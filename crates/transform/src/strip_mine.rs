//! Strip mining — the first half of pattern tiling (Table 1 of the paper).
//!
//! Each pattern whose domain contains tileable dimensions is split into a
//! perfectly nested pair: an outer pattern over strided tile indices and an
//! inner pattern over one tile. The rules follow Table 1:
//!
//! * `Map` becomes a write-once `MultiFold` whose update generates one tile
//!   with an inner `Map`.
//! * `MultiFold` becomes a `MultiFold` of `MultiFold`s; accumulator
//!   dimensions *tracked* one-to-one by a tiled domain index are restricted
//!   to per-tile regions (the paper's sumrows example), while untracked
//!   dimensions (including data-dependent locations, as in k-means) keep
//!   full-range partial accumulators merged with the combine function.
//! * `FlatMap` and `GroupByFold` nest into themselves; the tiled
//!   `GroupByFold` merges per-tile dictionaries bucket-by-bucket.
//!
//! Tile copies (`x.copy(…)`) are *not* introduced here; see
//! [`crate::copies`], which runs after interchange so copies land at their
//! final position.

use std::collections::BTreeMap;

use pphw_ir::access::{classify_index, IndexClass};
use pphw_ir::block::{Block, Op, Stmt};
use pphw_ir::expr::Expr;
use pphw_ir::pattern::{
    AccDef, AccUpdate, FlatMapPat, GbfBody, GroupByFoldPat, Init, Lambda, MapPat, MultiFoldPat,
    Pattern,
};
use pphw_ir::program::Program;
use pphw_ir::size::Size;
use pphw_ir::types::{ScalarType, Sym, SymTable, Type};

use crate::config::{TileConfig, TileError};
use crate::rewrite::{alpha_rename, instantiate_lambda, subst_vars};

/// Strip mines every tileable pattern in the program.
///
/// # Errors
///
/// Returns a [`TileError`] if a configured tile size does not divide its
/// dimension or a write-once `MultiFold` cannot be tiled.
pub fn strip_mine_program(prog: &Program, cfg: &TileConfig) -> Result<Program, TileError> {
    let mut out = prog.clone();
    let mut body = std::mem::take(&mut out.body);
    sm_block(&mut body, &mut out.syms, cfg)?;
    out.body = body;
    Ok(out)
}

fn sm_block(block: &mut Block, syms: &mut SymTable, cfg: &TileConfig) -> Result<(), TileError> {
    for stmt in &mut block.stmts {
        if let Op::Pattern(p) = &mut stmt.op {
            // Inner-first: tile nested patterns before wrapping this one.
            for b in p.child_blocks_mut() {
                sm_block(b, syms, cfg)?;
            }
            if let Some(new_pat) = sm_pattern(p, syms, cfg)? {
                stmt.op = Op::Pattern(new_pat);
            }
        }
    }
    Ok(())
}

/// Per-dimension tiling info for one pattern.
struct DimPlan {
    /// Full extent.
    size: Size,
    /// Tile size, if this dimension is tiled.
    tile: Option<i64>,
    /// Fresh outer (strided) index, present when tiled.
    outer_idx: Option<Sym>,
    /// Fresh inner index.
    inner_idx: Sym,
}

impl DimPlan {
    fn inner_extent(&self) -> Size {
        match self.tile {
            Some(b) => Size::Const(b),
            None => self.size.clone(),
        }
    }

    /// The (tile size, outer index) pair of a tiled dimension; `None` for
    /// untiled ones. `tile` and `outer_idx` are always set together (see
    /// [`plan_dims`]), so matching on this avoids panicking lookups.
    fn tiled(&self) -> Option<(i64, Sym)> {
        match (self.tile, self.outer_idx) {
            (Some(b), Some(ii)) => Some((b, ii)),
            _ => None,
        }
    }

    /// The expression reconstructing the original global index.
    fn global_index(&self) -> Expr {
        match (self.tile, self.outer_idx) {
            (Some(b), Some(ii)) => Expr::var(ii)
                .mul(Expr::SizeOf(Size::Const(b)))
                .add(Expr::var(self.inner_idx)),
            _ => Expr::var(self.inner_idx),
        }
    }
}

fn plan_dims(
    domain: &[Size],
    orig_idx: Option<&[Sym]>,
    syms: &mut SymTable,
    cfg: &TileConfig,
) -> Result<Vec<DimPlan>, TileError> {
    let mut plans = Vec::with_capacity(domain.len());
    for (k, size) in domain.iter().enumerate() {
        let tile = cfg.tile_for(size)?;
        let outer_idx = tile.map(|_| syms.fresh("ii", Type::i32()));
        let inner_idx = syms.fresh("i", Type::i32());
        let _ = orig_idx.map(|idx| idx[k]);
        plans.push(DimPlan {
            size: size.clone(),
            tile,
            outer_idx,
            inner_idx,
        });
    }
    Ok(plans)
}

fn outer_domain(plans: &[DimPlan]) -> Vec<Size> {
    plans
        .iter()
        .filter_map(|p| {
            p.tile
                .map(|b| (p.size.clone() / Size::Const(b)).simplified())
        })
        .collect()
}

fn outer_idx(plans: &[DimPlan]) -> Vec<Sym> {
    plans.iter().filter_map(|p| p.outer_idx).collect()
}

fn subst_map(plans: &[DimPlan], params: &[Sym]) -> BTreeMap<Sym, Expr> {
    params
        .iter()
        .zip(plans)
        .map(|(p, plan)| (*p, plan.global_index()))
        .collect()
}

/// Clones a lambda with fresh parameter symbols and alpha-renamed body.
pub(crate) fn clone_lambda(l: &Lambda, syms: &mut SymTable) -> Lambda {
    let (mut body, _) = alpha_rename(&l.body, syms);
    let mut subst = BTreeMap::new();
    let params: Vec<Sym> = l
        .params
        .iter()
        .map(|p| {
            let info = syms.info(*p).clone();
            let fresh = syms.fresh(info.name, info.ty);
            subst.insert(*p, Expr::Var(fresh));
            fresh
        })
        .collect();
    subst_vars(&mut body, &subst);
    Lambda::new(params, body)
}

fn sm_pattern(
    p: &Pattern,
    syms: &mut SymTable,
    cfg: &TileConfig,
) -> Result<Option<Pattern>, TileError> {
    match p {
        Pattern::Map(m) => sm_map(m, syms, cfg),
        Pattern::MultiFold(mf) => sm_multifold(mf, syms, cfg),
        Pattern::FlatMap(fm) => sm_flatmap(fm, syms, cfg),
        Pattern::GroupByFold(g) => sm_groupbyfold(g, syms, cfg),
    }
}

/// T[ Map(d)(m) ] = MultiFold(d/b)(d)(zeros(d)){ ii => (ii*b, acc => Map(b)(T[m])) }(_)
fn sm_map(m: &MapPat, syms: &mut SymTable, cfg: &TileConfig) -> Result<Option<Pattern>, TileError> {
    let plans = plan_dims(&m.domain, Some(&m.body.params), syms, cfg)?;
    if plans.iter().all(|p| p.tile.is_none()) {
        return Ok(None);
    }
    let elem = map_elem_type(m, syms)?;

    let mut inner_body = m.body.body.clone();
    subst_vars(&mut inner_body, &subst_map(&plans, &m.body.params));
    let inner_domain: Vec<Size> = plans.iter().map(|p| p.inner_extent()).collect();
    let inner_map = Pattern::Map(MapPat {
        domain: inner_domain.clone(),
        body: Lambda::new(plans.iter().map(|p| p.inner_idx).collect(), inner_body),
    });
    let tile_sym = syms.fresh("tile", Type::tensor(elem.clone(), inner_domain.clone()));

    let mut pre = Block::new();
    pre.push(tile_sym, Op::Pattern(inner_map));

    let acc_param = syms.fresh("acc", Type::tensor(elem.clone(), inner_domain));
    let update = AccUpdate {
        loc: plans
            .iter()
            .map(|p| match (p.tile, p.outer_idx) {
                (Some(b), Some(ii)) => Expr::var(ii).mul(Expr::SizeOf(Size::Const(b))),
                _ => Expr::int(0),
            })
            .collect(),
        shape: plans.iter().map(|p| p.inner_extent()).collect(),
        acc_param,
        body: Block {
            stmts: Vec::new(),
            result: vec![tile_sym],
        },
    };

    Ok(Some(Pattern::MultiFold(MultiFoldPat {
        domain: outer_domain(&plans),
        accs: vec![AccDef {
            name: "out".to_string(),
            shape: m.domain.clone(),
            elem: elem.clone(),
            init: Init::zero_of(&elem),
        }],
        idx: outer_idx(&plans),
        pre,
        updates: vec![update],
        combines: vec![None],
    })))
}

fn map_elem_type(m: &MapPat, syms: &SymTable) -> Result<ScalarType, TileError> {
    match syms.ty(m.body.body.result_sym()) {
        Type::Scalar(s) => Ok(s.clone()),
        other => Err(TileError::Unsupported(format!(
            "map body result must be scalar, got {other}"
        ))),
    }
}

/// How one accumulator dimension behaves under tiling.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AccDimPlan {
    /// Tracked one-to-one by tiled domain dimension `k`: the inner pattern
    /// accumulates into a tile-sized region.
    Tracked { domain_dim: usize },
    /// Free: the inner pattern accumulates into the full dimension and the
    /// outer update merges with the combine function.
    Free,
}

/// T[ MultiFold(d)(r)(z)(f)(c) ] per Table 1, with region restriction for
/// tracked dimensions (the sumrows example of Table 2).
fn sm_multifold(
    mf: &MultiFoldPat,
    syms: &mut SymTable,
    cfg: &TileConfig,
) -> Result<Option<Pattern>, TileError> {
    let plans = plan_dims(&mf.domain, Some(&mf.idx), syms, cfg)?;
    if plans.iter().all(|p| p.tile.is_none()) {
        return Ok(None);
    }
    let control: std::collections::BTreeSet<Sym> = mf.idx.iter().copied().collect();

    // Classify each accumulator dimension of each update. A dimension
    // "tracked" one-to-one by a *tiled* domain index becomes a per-tile
    // region; one tracked by an *untiled* index stays full-range inside the
    // tile but remains safe for write-once folds (each tile iterates it in
    // full, and tiles are disjoint in the tracked-tiled dimensions).
    let mut acc_plans: Vec<Vec<AccDimPlan>> = Vec::with_capacity(mf.accs.len());
    for (acc, update) in mf.accs.iter().zip(&mf.updates) {
        let mut dims = Vec::with_capacity(acc.shape.len());
        let mut unsafe_write_once = false;
        for (j, loc) in update.loc.iter().enumerate() {
            let point_region = update.shape.is_empty() || update.shape[j].as_const() == Some(1);
            let plan = match classify_index(loc, &control) {
                IndexClass::Affine { terms, offset }
                    if point_region
                        && offset == Size::Const(0)
                        && terms.len() == 1
                        && terms.values().next() == Some(&Size::Const(1)) =>
                {
                    let pos = terms
                        .keys()
                        .next()
                        .and_then(|idx_sym| mf.idx.iter().position(|s| s == idx_sym));
                    match pos {
                        Some(k) if plans[k].tile.is_some() => AccDimPlan::Tracked { domain_dim: k },
                        Some(_) => AccDimPlan::Free, // tracked by untiled index
                        None => {
                            unsafe_write_once = true;
                            AccDimPlan::Free
                        }
                    }
                }
                _ => {
                    unsafe_write_once = true;
                    AccDimPlan::Free
                }
            };
            dims.push(plan);
        }
        if mf.combines[acc_plans.len()].is_none() && unsafe_write_once {
            return Err(TileError::UntrackedWriteOnce {
                pattern: acc.name.clone(),
            });
        }
        acc_plans.push(dims);
    }

    // ---- inner MultiFold over one tile ----
    let subst = subst_map(&plans, &mf.idx);
    let mut inner_pre = mf.pre.clone();
    subst_vars(&mut inner_pre, &subst);

    let mut inner_accs = Vec::with_capacity(mf.accs.len());
    let mut inner_updates = Vec::with_capacity(mf.updates.len());
    for ((acc, update), dims) in mf.accs.iter().zip(&mf.updates).zip(&acc_plans) {
        let inner_shape: Vec<Size> = acc
            .shape
            .iter()
            .zip(dims)
            .map(|(s, d)| match d {
                AccDimPlan::Tracked { domain_dim } => match plans[*domain_dim].tile {
                    Some(b) => Size::Const(b),
                    None => s.clone(),
                },
                AccDimPlan::Free => s.clone(),
            })
            .collect();
        inner_accs.push(AccDef {
            name: format!("{}_part", acc.name),
            shape: inner_shape,
            elem: acc.elem.clone(),
            init: acc.init.clone(),
        });
        let mut body = update.body.clone();
        subst_vars(&mut body, &subst);
        let loc: Vec<Expr> = update
            .loc
            .iter()
            .zip(dims)
            .map(|(e, d)| match d {
                AccDimPlan::Tracked { domain_dim } => Expr::var(plans[*domain_dim].inner_idx),
                AccDimPlan::Free => {
                    let mut e = e.clone();
                    let tmp_subst = &subst;
                    e = e.subst_vars(&|s| tmp_subst.get(&s).cloned());
                    e
                }
            })
            .collect();
        inner_updates.push(AccUpdate {
            loc,
            shape: update.shape.clone(),
            acc_param: update.acc_param,
            body,
        });
    }
    let inner_mf = Pattern::MultiFold(MultiFoldPat {
        domain: plans.iter().map(|p| p.inner_extent()).collect(),
        accs: inner_accs.clone(),
        idx: plans.iter().map(|p| p.inner_idx).collect(),
        pre: inner_pre,
        updates: inner_updates,
        combines: mf.combines.clone(),
    });
    let partial_syms: Vec<Sym> = inner_accs
        .iter()
        .map(|a| syms.fresh(a.name.clone(), acc_value_type(a)))
        .collect();

    let mut outer_pre = Block::new();
    outer_pre.stmts.push(Stmt {
        syms: partial_syms.clone(),
        op: Op::Pattern(inner_mf),
    });

    // ---- outer updates: merge partial regions into the accumulators ----
    let mut outer_updates = Vec::with_capacity(mf.accs.len());
    for (q, (acc, dims)) in mf.accs.iter().zip(&acc_plans).enumerate() {
        let loc: Vec<Expr> = dims
            .iter()
            .map(|d| match d {
                AccDimPlan::Tracked { domain_dim } => match plans[*domain_dim].tiled() {
                    Some((b, ii)) => Expr::var(ii).mul(Expr::SizeOf(Size::Const(b))),
                    None => Expr::int(0),
                },
                AccDimPlan::Free => Expr::int(0),
            })
            .collect();
        let region: Vec<Size> = acc
            .shape
            .iter()
            .zip(dims)
            .map(|(s, d)| match d {
                AccDimPlan::Tracked { domain_dim } => match plans[*domain_dim].tile {
                    Some(b) => Size::Const(b),
                    None => s.clone(),
                },
                AccDimPlan::Free => s.clone(),
            })
            .collect();
        let acc_param = syms.fresh("acc", region_value_type(&region, &acc.elem));
        let body = match &mf.combines[q] {
            None => Block {
                stmts: Vec::new(),
                result: vec![partial_syms[q]],
            },
            Some(c) => merge_region(c, acc_param, partial_syms[q], &region, &acc.elem, syms),
        };
        outer_updates.push(AccUpdate {
            loc,
            shape: region,
            acc_param,
            body,
        });
    }

    let outer_combines: Vec<Option<Lambda>> = mf
        .combines
        .iter()
        .map(|c| c.as_ref().map(|l| clone_lambda(l, syms)))
        .collect();

    Ok(Some(Pattern::MultiFold(MultiFoldPat {
        domain: outer_domain(&plans),
        accs: mf.accs.clone(),
        idx: outer_idx(&plans),
        pre: outer_pre,
        updates: outer_updates,
        combines: outer_combines,
    })))
}

/// The value type a `MultiFold` output/partial symbol gets for an
/// accumulator declaration.
fn acc_value_type(acc: &AccDef) -> Type {
    region_value_type(&acc.shape, &acc.elem)
}

fn region_value_type(shape: &[Size], elem: &ScalarType) -> Type {
    if shape.is_empty() {
        Type::Scalar(elem.clone())
    } else {
        Type::Tensor {
            elem: elem.clone(),
            shape: shape.to_vec(),
        }
    }
}

/// Builds `acc => combine(acc, partial)` applied elementwise over a region.
pub(crate) fn merge_region(
    combine: &Lambda,
    acc_param: Sym,
    partial: Sym,
    region: &[Size],
    elem: &ScalarType,
    syms: &mut SymTable,
) -> Block {
    if region.is_empty() {
        // Scalar region: inline the combine directly.
        let mut stmts = Vec::new();
        let merged = instantiate_lambda(
            combine,
            &[Expr::Var(acc_param), Expr::Var(partial)],
            syms,
            &mut stmts,
        );
        let result = match merged {
            Expr::Var(s) => s,
            other => {
                let s = syms.fresh("merged", Type::Scalar(elem.clone()));
                stmts.push(Stmt::new(s, Op::Expr(other)));
                s
            }
        };
        return Block {
            stmts,
            result: vec![result],
        };
    }
    // Tensor region: map(region){ rid => combine(acc(rid), partial(rid)) }.
    let rid: Vec<Sym> = region
        .iter()
        .map(|_| syms.fresh("r", Type::i32()))
        .collect();
    let rid_exprs: Vec<Expr> = rid.iter().map(|s| Expr::var(*s)).collect();
    let mut stmts = Vec::new();
    let merged = instantiate_lambda(
        combine,
        &[
            Expr::read(acc_param, rid_exprs.clone()),
            Expr::read(partial, rid_exprs),
        ],
        syms,
        &mut stmts,
    );
    let result = match merged {
        Expr::Var(s) => s,
        other => {
            let s = syms.fresh("merged", Type::Scalar(elem.clone()));
            stmts.push(Stmt::new(s, Op::Expr(other)));
            s
        }
    };
    let map_body = Block {
        stmts,
        result: vec![result],
    };
    let map_sym = syms.fresh(
        "merged",
        Type::Tensor {
            elem: elem.clone(),
            shape: region.to_vec(),
        },
    );
    let mut body = Block::new();
    body.push(
        map_sym,
        Op::Pattern(Pattern::Map(MapPat {
            domain: region.to_vec(),
            body: Lambda::new(rid, map_body),
        })),
    );
    body.result = vec![map_sym];
    body
}

/// T[ FlatMap(d)(f) ] = FlatMap(d/b){ ii => FlatMap(b)(T[f]) }
fn sm_flatmap(
    fm: &FlatMapPat,
    syms: &mut SymTable,
    cfg: &TileConfig,
) -> Result<Option<Pattern>, TileError> {
    let plans = plan_dims(
        std::slice::from_ref(&fm.domain),
        Some(&fm.body.params),
        syms,
        cfg,
    )?;
    let Some((b, outer_idx)) = plans[0].tiled() else {
        return Ok(None);
    };
    let mut inner_body = fm.body.body.clone();
    subst_vars(&mut inner_body, &subst_map(&plans, &fm.body.params));
    let elem = match syms.ty(fm.body.body.result_sym()) {
        Type::DynVec { elem } => elem.clone(),
        Type::Tensor { elem, .. } => elem.clone(),
        other => {
            return Err(TileError::Unsupported(format!(
                "flatMap body result has type {other}"
            )))
        }
    };
    let inner = Pattern::FlatMap(FlatMapPat {
        domain: Size::Const(b),
        body: Lambda::new(vec![plans[0].inner_idx], inner_body),
    });
    let inner_sym = syms.fresh("chunk", Type::DynVec { elem });
    let mut outer_body = Block::new();
    outer_body.push(inner_sym, Op::Pattern(inner));
    outer_body.result = vec![inner_sym];
    Ok(Some(Pattern::FlatMap(FlatMapPat {
        domain: (fm.domain.clone() / Size::Const(b)).simplified(),
        body: Lambda::new(vec![outer_idx], outer_body),
    })))
}

/// T[ GroupByFold(d)(z)(h)(c) ] = GroupByFold(d/b)(T[z]){ ii =>
///     GroupByFold(b)(T[z])(T[h])(T[c]) }(T[c])
fn sm_groupbyfold(
    g: &GroupByFoldPat,
    syms: &mut SymTable,
    cfg: &TileConfig,
) -> Result<Option<Pattern>, TileError> {
    let plans = plan_dims(
        std::slice::from_ref(&g.domain),
        Some(std::slice::from_ref(&g.idx)),
        syms,
        cfg,
    )?;
    let Some((b, outer_idx)) = plans[0].tiled() else {
        return Ok(None);
    };
    let subst = subst_map(&plans, std::slice::from_ref(&g.idx));
    let mut inner_pre = g.pre.clone();
    subst_vars(&mut inner_pre, &subst);
    let inner_body = match &g.body {
        GbfBody::Element { key, update } => {
            let mut u = update.clone();
            subst_vars(&mut u.body, &subst);
            GbfBody::Element {
                key: key.subst_vars(&|s| subst.get(&s).cloned()),
                update: u,
            }
        }
        GbfBody::Merge { dict } => GbfBody::Merge { dict: *dict },
    };
    let inner = Pattern::GroupByFold(GroupByFoldPat {
        domain: Size::Const(b),
        acc: g.acc.clone(),
        idx: plans[0].inner_idx,
        pre: inner_pre,
        body: inner_body,
        combine: g.combine.clone(),
    });
    let key_ty = dict_key_type(g, syms);
    let dict_sym = syms.fresh(
        "tileDict",
        Type::Dict {
            key: key_ty,
            value: Box::new(acc_value_type(&g.acc)),
        },
    );
    let mut outer_pre = Block::new();
    outer_pre.push(dict_sym, Op::Pattern(inner));
    Ok(Some(Pattern::GroupByFold(GroupByFoldPat {
        domain: (g.domain.clone() / Size::Const(b)).simplified(),
        acc: g.acc.clone(),
        idx: outer_idx,
        pre: outer_pre,
        body: GbfBody::Merge { dict: dict_sym },
        combine: clone_lambda(&g.combine, syms),
    })))
}

fn dict_key_type(g: &GroupByFoldPat, syms: &SymTable) -> ScalarType {
    match &g.body {
        GbfBody::Element { key, .. } => pphw_ir::infer::infer_scalar_type(key, syms)
            .unwrap_or(ScalarType::Prim(pphw_ir::types::DType::I32)),
        GbfBody::Merge { dict } => match syms.ty(*dict) {
            Type::Dict { key, .. } => key.clone(),
            _ => ScalarType::Prim(pphw_ir::types::DType::I32),
        },
    }
}
