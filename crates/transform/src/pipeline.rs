//! Per-pass verification hook for the tiling pipeline.
//!
//! The deep semantic verifier lives in `pphw-verify`, which sits *above*
//! this crate in the dependency graph (it also analyzes hardware designs),
//! so the pipeline cannot call it directly. Instead the driver installs it
//! here once via [`install_deep_verifier`], and [`tile_program`]
//! (crate::tiling) calls [`check_pass`] after every pass: a transform bug
//! is then reported at the pass that introduced it, not three passes later
//! as a simulation divergence.
//!
//! Two layers run at different costs:
//!
//! - the structural `Program::validate` postcondition is always on (cheap,
//!   and already part of the pipeline's contract);
//! - the installed deep verifier runs only when [`verification_enabled`]
//!   says so — debug builds, or any build with `PPHW_VERIFY` set in the
//!   environment (CI sets it) — so the release DSE hot path keeps its
//!   measured performance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use pphw_ir::program::Program;

use crate::config::TileError;

/// A deep verifier: returns `Err(description)` when `prog` violates a
/// semantic invariant. The `&str` argument names the pass that just ran.
pub type DeepVerifier = dyn Fn(&Program, &str) -> Result<(), String> + Send + Sync;

static DEEP_VERIFIER: OnceLock<Box<DeepVerifier>> = OnceLock::new();
static DEEP_RUNS: AtomicU64 = AtomicU64::new(0);

/// Installs the process-wide deep verifier run after every tiling pass.
///
/// First installation wins; later calls are ignored (the driver installs
/// the same verifier from every entry point, so this is idempotent).
pub fn install_deep_verifier(v: Box<DeepVerifier>) {
    let _ = DEEP_VERIFIER.set(v);
}

/// How many times the installed deep verifier has run in this process.
/// Lets tests (and the CI differential gate) assert the per-pass checks
/// were actually active rather than silently skipped.
pub fn deep_verifier_runs() -> u64 {
    DEEP_RUNS.load(Ordering::Relaxed)
}

/// Returns `true` when per-pass deep verification should run: always in
/// debug builds, and in release builds when `PPHW_VERIFY` is set to
/// anything but `0` in the environment.
pub fn verification_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if cfg!(debug_assertions) {
            return true;
        }
        match std::env::var("PPHW_VERIFY") {
            Ok(v) => v != "0",
            Err(_) => false,
        }
    })
}

/// Checks `prog` after `pass`: structural validation always, plus the
/// installed deep verifier when [`verification_enabled`].
///
/// # Errors
///
/// Returns [`TileError::Unsupported`] naming the failing pass when either
/// layer rejects the program.
pub fn check_pass(prog: &Program, pass: &str) -> Result<(), TileError> {
    if let Err(e) = prog.validate() {
        return Err(TileError::Unsupported(format!(
            "program invalid after pass `{pass}`: {e}"
        )));
    }
    if verification_enabled() {
        if let Some(v) = DEEP_VERIFIER.get() {
            DEEP_RUNS.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = v(prog, pass) {
                return Err(TileError::Unsupported(format!(
                    "program rejected by verifier after pass `{pass}`: {e}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::types::DType;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new("t");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.map(vec![d], |c, idx| c.read(x, vec![c.var(idx[0])]));
        b.finish(vec![out])
    }

    #[test]
    fn check_pass_accepts_valid_program() {
        assert!(check_pass(&tiny(), "unit-test").is_ok());
    }

    #[test]
    fn check_pass_names_failing_pass_on_invalid_program() {
        let mut p = tiny();
        p.body.result = vec![pphw_ir::types::Sym(9999)];
        let err = check_pass(&p, "unit-test").unwrap_err();
        assert!(err.to_string().contains("after pass `unit-test`"), "{err}");
    }
}
