//! k-means clustering — one refinement iteration, in the fused form of
//! Figure 4: a two-accumulator `MultiFold` that assigns each point to its
//! closest centroid (summing points and counts per centroid at a
//! data-dependent location), followed by the averaging map that produces
//! the new centroids.

use pphw_ir::block::{Block, Op, Stmt};
use pphw_ir::builder::ProgramBuilder;
use pphw_ir::expr::Expr;
use pphw_ir::interp::Value;
use pphw_ir::pattern::{AccDef, AccUpdate, Init, Lambda, MultiFoldPat, Pattern};
use pphw_ir::size::{Size, SizeEnv};
use pphw_ir::types::{DType, ScalarType, Type};
use pphw_ir::Program;

use crate::data::{dim, rand_tensor, rng};

/// The fused k-means program (Figure 4): outputs the new centroids.
pub fn kmeans_program() -> Program {
    let mut b = ProgramBuilder::new("kmeans");
    let n = b.size("n");
    let k = b.size("k");
    let d = b.size("d");
    let points = b.input("points", DType::F32, vec![n.clone(), d.clone()]);
    let centroids = b.input("centroids", DType::F32, vec![k.clone(), d.clone()]);
    let f32t = ScalarType::Prim(DType::F32);

    let (n2, k2, d2) = (n.clone(), k.clone(), d.clone());
    let new_centroids = b.with_ctx(move |c| {
        // ---- the fused assign + sum + count MultiFold ----
        let i = c.syms().fresh("i", Type::i32());

        // pre: buffer the current point (Figure 4's `pt = points.slice(i, *)`)
        // and find its closest centroid.
        let (pre, (pt, min_idx)) = c.block(|pc| {
            let pt = pc.slice(
                "pt",
                points,
                vec![
                    pphw_ir::block::SliceDim::Point(Expr::var(i)),
                    pphw_ir::block::SliceDim::Full,
                ],
            );
            let (kk, dd) = (k2.clone(), d2.clone());
            let best = pc.fold(
                "best",
                vec![kk],
                vec![],
                ScalarType::Tuple(vec![DType::F32, DType::I32]),
                Init::argmin(),
                |fc, j, acc| {
                    let j = j[0];
                    let dist = fc.fold(
                        "dist",
                        vec![dd.clone()],
                        vec![],
                        ScalarType::Prim(DType::F32),
                        Init::zeros(),
                        |dc, p, acc2| {
                            let diff = dc.sq_diff(
                                dc.read(pt, vec![dc.var(p[0])]),
                                dc.read(centroids, vec![dc.var(j), dc.var(p[0])]),
                            );
                            dc.add(dc.var(acc2), diff)
                        },
                        |dc, a, b2| dc.add(dc.var(a), dc.var(b2)),
                    );
                    let cand = fc.tuple(vec![fc.var(dist), fc.var(j)]);
                    fc.select(
                        fc.lt(fc.field(fc.var(acc), 0), fc.var(dist)),
                        fc.var(acc),
                        cand,
                    )
                },
                |fc, a, b2| {
                    fc.select(
                        fc.lt(fc.field(fc.var(a), 0), fc.field(fc.var(b2), 0)),
                        fc.var(a),
                        fc.var(b2),
                    )
                },
            );
            let min_idx = pc.scalar("minIdx", pc.field(pc.var(best), 1));
            (pt, min_idx)
        });

        // sums update: add point i into row minIdx.
        let sums_acc = c
            .syms()
            .fresh("accRow", Type::tensor(f32t.clone(), vec![d2.clone()]));
        let (mut sums_body, sums_new) = c.block(|uc| {
            uc.map(vec![d2.clone()], |mc, j| {
                let j = j[0];
                mc.add(
                    mc.read(sums_acc, vec![mc.var(j)]),
                    mc.read(pt, vec![mc.var(j)]),
                )
            })
        });
        sums_body.result = vec![sums_new];

        // counts update: increment bucket minIdx.
        let counts_acc = c.syms().fresh("accCnt", Type::Scalar(f32t.clone()));
        let counts_new = c.syms().fresh("cntNew", Type::Scalar(f32t.clone()));
        let counts_body = Block {
            stmts: vec![Stmt::new(
                counts_new,
                Op::Expr(Expr::var(counts_acc).add(Expr::f32(1.0))),
            )],
            result: vec![counts_new],
        };

        // scalar elementwise combines (a + b).
        let add_lambda = |c: &mut pphw_ir::builder::Ctx<'_>| {
            let a = c.syms().fresh("a", Type::Scalar(f32t.clone()));
            let b2 = c.syms().fresh("b", Type::Scalar(f32t.clone()));
            let r = c.syms().fresh("r", Type::Scalar(f32t.clone()));
            let body = Block {
                stmts: vec![Stmt::new(r, Op::Expr(Expr::var(a).add(Expr::var(b2))))],
                result: vec![r],
            };
            Lambda::new(vec![a, b2], body)
        };
        let comb_sums = add_lambda(c);
        let comb_counts = add_lambda(c);

        let mf = MultiFoldPat {
            domain: vec![n2.clone()],
            accs: vec![
                AccDef {
                    name: "sums".into(),
                    shape: vec![k2.clone(), d2.clone()],
                    elem: f32t.clone(),
                    init: Init::zeros(),
                },
                AccDef {
                    name: "counts".into(),
                    shape: vec![k2.clone()],
                    elem: f32t.clone(),
                    init: Init::zeros(),
                },
            ],
            idx: vec![i],
            pre,
            updates: vec![
                AccUpdate {
                    loc: vec![Expr::var(min_idx), Expr::int(0)],
                    shape: vec![Size::Const(1), d2.clone()],
                    acc_param: sums_acc,
                    body: sums_body,
                },
                AccUpdate {
                    loc: vec![Expr::var(min_idx)],
                    shape: vec![],
                    acc_param: counts_acc,
                    body: counts_body,
                },
            ],
            combines: vec![Some(comb_sums), Some(comb_counts)],
        };
        let outs = c.push_pattern(
            vec![
                (
                    "sums".to_string(),
                    Type::tensor(f32t.clone(), vec![k2.clone(), d2.clone()]),
                ),
                (
                    "counts".to_string(),
                    Type::tensor(f32t.clone(), vec![k2.clone()]),
                ),
            ],
            Pattern::MultiFold(mf),
        );
        let (sums, counts) = (outs[0], outs[1]);

        // ---- averaging: newCentroids(i,j) = sums(i,j) / max(counts(i), 1) ----
        c.map(vec![k2, d2], move |mc, ij| {
            let (ci, cj) = (ij[0], ij[1]);
            mc.div(
                mc.read(sums, vec![mc.var(ci), mc.var(cj)]),
                mc.max2(mc.read(counts, vec![mc.var(ci)]), mc.f32(1.0)),
            )
        })
    });
    b.finish(vec![new_centroids])
}

/// Default workload sizes (clusters and features stay on chip, as in
/// Figure 6).
pub fn kmeans_sizes() -> Vec<(&'static str, i64)> {
    vec![("n", 16384), ("k", 16), ("d", 32)]
}

/// Default tile sizes (points tiled; k and d resident).
pub fn kmeans_tiles() -> Vec<(&'static str, i64)> {
    vec![("n", 512), ("k", 8)]
}

/// Random points and initial centroids.
pub fn kmeans_inputs(env: &SizeEnv, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let (n, k, d) = (dim(env, "n"), dim(env, "k"), dim(env, "d"));
    vec![
        rand_tensor(&mut r, &[n, d], 0.0, 10.0),
        rand_tensor(&mut r, &[k, d], 0.0, 10.0),
    ]
}

/// Reference implementation of one k-means iteration.
pub fn kmeans_golden(inputs: &[Value], env: &SizeEnv) -> Vec<Value> {
    let (n, k, d) = (dim(env, "n"), dim(env, "k"), dim(env, "d"));
    let points = inputs[0].as_f32_slice();
    let centroids = inputs[1].as_f32_slice();
    let mut sums = vec![0f32; k * d];
    let mut counts = vec![0f32; k];
    for i in 0..n {
        let mut best = (f32::MAX, usize::MAX);
        for j in 0..k {
            let mut dist = 0f32;
            for p in 0..d {
                let diff = points[i * d + p] - centroids[j * d + p];
                dist += diff * diff;
            }
            // Matches the IR's tie-breaking: later index wins ties.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(best.0 < dist) {
                best = (dist, j);
            }
        }
        let j = best.1;
        for p in 0..d {
            sums[j * d + p] += points[i * d + p];
        }
        counts[j] += 1.0;
    }
    let mut out = vec![0f32; k * d];
    for j in 0..k {
        let denom = counts[j].max(1.0);
        for p in 0..d {
            out[j * d + p] = sums[j * d + p] / denom;
        }
    }
    vec![Value::tensor_f32(&[k, d], out)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::interp::Interpreter;

    #[test]
    fn kmeans_validates() {
        kmeans_program().validate().unwrap();
    }

    #[test]
    fn kmeans_matches_golden() {
        let sizes = [("n", 128), ("k", 4), ("d", 8)];
        let env = Size::env(&sizes);
        let prog = kmeans_program();
        let inputs = kmeans_inputs(&env, 13);
        let got = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let want = kmeans_golden(&inputs, &env);
        assert!(
            got[0].approx_eq(&want[0], 1e-3),
            "got {:?}\nwant {:?}",
            got[0].as_f32_slice()[..8].to_vec(),
            want[0].as_f32_slice()[..8].to_vec()
        );
    }
}
