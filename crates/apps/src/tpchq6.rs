//! TPC-H Query 6: filter purchase records by predicate, then sum
//! `extendedprice * discount` over the matching rows.
//!
//! The paper's implementation fuses the filter into the reduction (one
//! streaming pass over the table); we express exactly that fused form — a
//! scalar fold whose contribution is predicated. A standalone `FlatMap`
//! filter variant is also provided to exercise the parallel-FIFO path.

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::Value;
use pphw_ir::pattern::Init;
use pphw_ir::size::SizeEnv;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;

use crate::data::{dim, rand_tensor, rng};

/// Query constants (scaled-down TPC-H Q6 predicate).
const DATE_LO: f32 = 30.0;
const DATE_HI: f32 = 60.0;
const DISC_LO: f32 = 0.05;
const DISC_HI: f32 = 0.07;
const QTY_MAX: f32 = 24.0;

/// The fused filter + reduce query.
pub fn tpchq6_program() -> Program {
    let mut b = ProgramBuilder::new("tpchq6");
    let n = b.size("n");
    let shipdate = b.input("shipdate", DType::F32, vec![n.clone()]);
    let discount = b.input("discount", DType::F32, vec![n.clone()]);
    let quantity = b.input("quantity", DType::F32, vec![n.clone()]);
    let price = b.input("price", DType::F32, vec![n.clone()]);
    let out = b.fold(
        "revenue",
        vec![n],
        vec![],
        ScalarType::Prim(DType::F32),
        Init::zeros(),
        |c, i, acc| {
            let i = i[0];
            let date = c.read(shipdate, vec![c.var(i)]);
            let disc = c.read(discount, vec![c.var(i)]);
            let qty = c.read(quantity, vec![c.var(i)]);
            let prc = c.read(price, vec![c.var(i)]);
            let pred = c.and(
                c.and(
                    c.lt(c.f32(DATE_LO), date.clone()),
                    c.lt(date, c.f32(DATE_HI)),
                ),
                c.and(
                    c.and(
                        c.lt(c.f32(DISC_LO), disc.clone()),
                        c.lt(disc.clone(), c.f32(DISC_HI)),
                    ),
                    c.lt(qty, c.f32(QTY_MAX)),
                ),
            );
            let contrib = c.select(pred, c.mul(prc, disc), c.f32(0.0));
            c.add(c.var(acc), contrib)
        },
        |c, a, b2| c.add(c.var(a), c.var(b2)),
    );
    b.finish(vec![out])
}

/// A standalone filter returning the matching discounts (FlatMap form),
/// used to exercise the parallel-FIFO hardware path.
pub fn tpchq6_filter_program() -> Program {
    let mut b = ProgramBuilder::new("tpchq6_filter");
    let n = b.size("n");
    let discount = b.input("discount", DType::F32, vec![n.clone()]);
    let out = b.filter("matching", n, |c, i| {
        let disc = c.read(discount, vec![c.var(i)]);
        (
            c.and(
                c.lt(c.f32(DISC_LO), disc.clone()),
                c.lt(disc.clone(), c.f32(DISC_HI)),
            ),
            disc,
        )
    });
    b.finish(vec![out])
}

/// Default workload sizes.
pub fn tpchq6_sizes() -> Vec<(&'static str, i64)> {
    vec![("n", 1 << 20)]
}

/// Default tile sizes.
pub fn tpchq6_tiles() -> Vec<(&'static str, i64)> {
    vec![("n", 8192)]
}

/// Random table columns.
pub fn tpchq6_inputs(env: &SizeEnv, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let n = dim(env, "n");
    vec![
        rand_tensor(&mut r, &[n], 0.0, 90.0),  // shipdate
        rand_tensor(&mut r, &[n], 0.0, 0.11),  // discount
        rand_tensor(&mut r, &[n], 1.0, 50.0),  // quantity
        rand_tensor(&mut r, &[n], 1.0, 100.0), // price
    ]
}

/// Reference implementation.
pub fn tpchq6_golden(inputs: &[Value], env: &SizeEnv) -> Vec<Value> {
    let n = dim(env, "n");
    let shipdate = inputs[0].as_f32_slice();
    let discount = inputs[1].as_f32_slice();
    let quantity = inputs[2].as_f32_slice();
    let price = inputs[3].as_f32_slice();
    let mut acc = 0f32;
    for i in 0..n {
        if shipdate[i] > DATE_LO
            && shipdate[i] < DATE_HI
            && discount[i] > DISC_LO
            && discount[i] < DISC_HI
            && quantity[i] < QTY_MAX
        {
            acc += price[i] * discount[i];
        }
    }
    vec![Value::scalar_f32(acc)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::interp::Interpreter;
    use pphw_ir::size::Size;

    #[test]
    fn tpchq6_matches_golden() {
        let sizes = [("n", 4096)];
        let env = Size::env(&sizes);
        let prog = tpchq6_program();
        let inputs = tpchq6_inputs(&env, 7);
        let got = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let want = tpchq6_golden(&inputs, &env);
        assert!(
            got[0].approx_eq(&want[0], 1e-3),
            "got {:?}, want {:?}",
            got[0],
            want[0]
        );
    }

    #[test]
    fn filter_variant_selects_matching() {
        let sizes = [("n", 512)];
        let env = Size::env(&sizes);
        let prog = tpchq6_filter_program();
        let inputs = tpchq6_inputs(&env, 9);
        let got = Interpreter::new(&prog, &sizes)
            .run(vec![inputs[1].clone()])
            .unwrap();
        let expect: Vec<f32> = inputs[1]
            .as_f32_slice()
            .into_iter()
            .filter(|d| *d > DISC_LO && *d < DISC_HI)
            .collect();
        assert_eq!(got[0].as_f32_slice(), expect);
    }
}
