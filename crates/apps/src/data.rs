//! Workload generation helpers.
//!
//! All randomness comes from the hermetic [`pphw_testkit::Rng`] so that
//! workloads are reproducible from a single `u64` seed with no registry
//! dependencies.

use pphw_ir::interp::Value;
use pphw_ir::size::SizeEnv;
use pphw_testkit::Rng;

/// Looks up a dimension value.
///
/// # Panics
///
/// Panics if the dimension is unbound.
pub fn dim(env: &SizeEnv, name: &str) -> usize {
    *env.get(name)
        .unwrap_or_else(|| panic!("dimension `{name}` not bound")) as usize
}

/// A seeded random vector with values in `[lo, hi)`.
pub fn rand_vec(rng: &mut Rng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// A seeded random f32 tensor value.
pub fn rand_tensor(rng: &mut Rng, shape: &[usize], lo: f32, hi: f32) -> Value {
    let n = shape.iter().product();
    Value::tensor_f32(shape, rand_vec(rng, n, lo, hi))
}

/// A seeded random i32 tensor value in `[0, bound)`.
pub fn rand_labels(rng: &mut Rng, n: usize, bound: i64) -> Value {
    Value::tensor_i32(&[n], (0..n).map(|_| rng.gen_range(0..bound)).collect())
}

/// Deterministic RNG for a benchmark seed.
#[must_use]
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Compares two flat f32 sequences with relative tolerance.
pub fn approx_slices(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= tol * scale
        })
}
