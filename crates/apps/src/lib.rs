//! # pphw-apps — the paper's benchmark suite (Table 5)
//!
//! The six data-analytics applications the paper evaluates, written in
//! PPL: vector outer product, matrix row summation, matrix multiplication,
//! TPC-H Query 6, Gaussian discriminant analysis, and k-means clustering —
//! plus seeded workload generators and plain-Rust golden implementations
//! used to validate every compiled configuration.

pub mod data;
pub mod gda;
pub mod kmeans;
pub mod simple;
pub mod tpchq6;

use pphw_ir::interp::Value;
use pphw_ir::size::SizeEnv;
use pphw_ir::Program;

/// One benchmark: program constructor, workload, and reference semantics.
pub struct BenchSpec {
    /// Benchmark name (Table 5 row).
    pub name: &'static str,
    /// Short description.
    pub description: &'static str,
    /// Major collections operations, as listed in Table 5.
    pub collections_ops: &'static str,
    /// Builds the PPL program.
    pub program: fn() -> Program,
    /// Default workload sizes.
    pub sizes: fn() -> Vec<(&'static str, i64)>,
    /// Default tile sizes.
    pub tiles: fn() -> Vec<(&'static str, i64)>,
    /// Seeded input generation.
    pub inputs: fn(&SizeEnv, u64) -> Vec<Value>,
    /// Reference implementation.
    pub golden: fn(&[Value], &SizeEnv) -> Vec<Value>,
    /// Innermost parallelism factor (constant across levels, §6.1).
    pub inner_par: u32,
    /// Extra parallelism for the metapipelined design, when the paper
    /// reports hand-parallelizing a stage (gda's outer product, §6.2).
    pub meta_par: Option<u32>,
}

impl BenchSpec {
    /// Convenience: default size pairs as a `SizeEnv`.
    pub fn env(&self) -> SizeEnv {
        pphw_ir::size::Size::env(&(self.sizes)())
    }
}

/// All six benchmarks of Table 5, in the paper's order.
pub fn all_benchmarks() -> Vec<BenchSpec> {
    vec![
        BenchSpec {
            name: "outerprod",
            description: "Vector outer product",
            collections_ops: "map",
            program: simple::outerprod_program,
            sizes: simple::outerprod_sizes,
            tiles: simple::outerprod_tiles,
            inputs: simple::outerprod_inputs,
            golden: simple::outerprod_golden,
            inner_par: 64,
            meta_par: None,
        },
        BenchSpec {
            name: "sumrows",
            description: "Matrix summation through rows",
            collections_ops: "map, reduce",
            program: simple::sumrows_program,
            sizes: simple::sumrows_sizes,
            tiles: simple::sumrows_tiles,
            inputs: simple::sumrows_inputs,
            golden: simple::sumrows_golden,
            inner_par: 64,
            meta_par: None,
        },
        BenchSpec {
            name: "gemm",
            description: "Matrix multiplication",
            collections_ops: "map, reduce",
            program: simple::gemm_program,
            sizes: simple::gemm_sizes,
            tiles: simple::gemm_tiles,
            inputs: simple::gemm_inputs,
            golden: simple::gemm_golden,
            inner_par: 64,
            meta_par: None,
        },
        BenchSpec {
            name: "tpchq6",
            description: "TPC-H Query 6",
            collections_ops: "filter, reduce",
            program: tpchq6::tpchq6_program,
            sizes: tpchq6::tpchq6_sizes,
            tiles: tpchq6::tpchq6_tiles,
            inputs: tpchq6::tpchq6_inputs,
            golden: tpchq6::tpchq6_golden,
            inner_par: 64,
            meta_par: None,
        },
        BenchSpec {
            name: "gda",
            description: "Gaussian discriminant analysis",
            collections_ops: "map, filter, reduce",
            program: gda::gda_program,
            sizes: gda::gda_sizes,
            tiles: gda::gda_tiles,
            inputs: gda::gda_inputs,
            golden: gda::gda_golden,
            inner_par: 128,
            meta_par: Some(512),
        },
        BenchSpec {
            name: "kmeans",
            description: "k-means clustering",
            collections_ops: "map, groupBy, reduce",
            program: kmeans::kmeans_program,
            sizes: kmeans::kmeans_sizes,
            tiles: kmeans::kmeans_tiles,
            inputs: kmeans::kmeans_inputs,
            golden: kmeans::kmeans_golden,
            inner_par: 64,
            meta_par: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks() {
        assert_eq!(all_benchmarks().len(), 6);
    }

    #[test]
    fn all_programs_validate() {
        for spec in all_benchmarks() {
            let prog = (spec.program)();
            prog.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name));
        }
    }
}
