//! The dense linear-algebra benchmarks: vector outer product, matrix row
//! summation, and matrix multiplication (Table 5).

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::expr::Expr;
use pphw_ir::interp::Value;
use pphw_ir::pattern::Init;
use pphw_ir::size::SizeEnv;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;

use crate::data::{dim, rand_tensor, rng};

// ---------------------------------------------------------------------
// outerprod
// ---------------------------------------------------------------------

/// Vector outer product: `out(i,j) = x(i) * y(j)`.
pub fn outerprod_program() -> Program {
    let mut b = ProgramBuilder::new("outerprod");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone()]);
    let y = b.input("y", DType::F32, vec![n.clone()]);
    let out = b.map(vec![m, n], |c, idx| {
        c.mul(
            c.read(x, vec![c.var(idx[0])]),
            c.read(y, vec![c.var(idx[1])]),
        )
    });
    b.finish(vec![out])
}

/// Default workload sizes for outerprod.
pub fn outerprod_sizes() -> Vec<(&'static str, i64)> {
    vec![("m", 1024), ("n", 1024)]
}

/// Default tile sizes for outerprod.
pub fn outerprod_tiles() -> Vec<(&'static str, i64)> {
    vec![("m", 128), ("n", 128)]
}

/// Random inputs for outerprod.
pub fn outerprod_inputs(env: &SizeEnv, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    vec![
        rand_tensor(&mut r, &[dim(env, "m")], -1.0, 1.0),
        rand_tensor(&mut r, &[dim(env, "n")], -1.0, 1.0),
    ]
}

/// Reference implementation of outerprod.
pub fn outerprod_golden(inputs: &[Value], env: &SizeEnv) -> Vec<Value> {
    let (m, n) = (dim(env, "m"), dim(env, "n"));
    let x = inputs[0].as_f32_slice();
    let y = inputs[1].as_f32_slice();
    let mut out = Vec::with_capacity(m * n);
    for xi in x.iter().take(m) {
        for yj in y.iter().take(n) {
            out.push(xi * yj);
        }
    }
    vec![Value::tensor_f32(&[m, n], out)]
}

// ---------------------------------------------------------------------
// sumrows
// ---------------------------------------------------------------------

/// Matrix summation through rows: `out(i) = sum_j x(i,j)` — written as
/// the user would (`x.map{ row => row.fold(0)(+) }`), a map of folds.
pub fn sumrows_program() -> Program {
    let mut b = ProgramBuilder::new("sumrows");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m], |c, i| {
            let i = i[0];
            c.fold(
                "rowsum",
                vec![n.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, j, acc| c.add(c.var(acc), c.read(x, vec![c.var(i), c.var(j[0])])),
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

/// The fused single-`MultiFold` variant of sumrows (Table 2's
/// location-based form), used by transformation tests.
pub fn sumrows_fused_program() -> Program {
    let mut b = ProgramBuilder::new("sumrows_fused");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.multi_fold(
            "rowsums",
            vec![m.clone(), n.clone()],
            vec![m.clone()],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            |c, idx| {
                let (i, j) = (idx[0], idx[1]);
                let v = c.read(x, vec![c.var(i), c.var(j)]);
                (
                    vec![Expr::var(i)],
                    vec![],
                    Box::new(move |c2: &mut pphw_ir::builder::Ctx<'_>, acc| c2.add(c2.var(acc), v)),
                )
            },
            Some(Box::new(|c2: &mut pphw_ir::builder::Ctx<'_>, a, b2| {
                c2.add(c2.var(a), c2.var(b2))
            })),
        )
    });
    b.finish(vec![out])
}

/// Default workload sizes for sumrows.
pub fn sumrows_sizes() -> Vec<(&'static str, i64)> {
    vec![("m", 2048), ("n", 512)]
}

/// Default tile sizes for sumrows.
pub fn sumrows_tiles() -> Vec<(&'static str, i64)> {
    vec![("m", 64), ("n", 512)]
}

/// Random inputs for sumrows.
pub fn sumrows_inputs(env: &SizeEnv, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    vec![rand_tensor(
        &mut r,
        &[dim(env, "m"), dim(env, "n")],
        0.0,
        1.0,
    )]
}

/// Reference implementation of sumrows.
pub fn sumrows_golden(inputs: &[Value], env: &SizeEnv) -> Vec<Value> {
    let (m, n) = (dim(env, "m"), dim(env, "n"));
    let x = inputs[0].as_f32_slice();
    let out: Vec<f32> = (0..m).map(|i| x[i * n..(i + 1) * n].iter().sum()).collect();
    vec![Value::tensor_f32(&[m], out)]
}

// ---------------------------------------------------------------------
// gemm
// ---------------------------------------------------------------------

/// Matrix multiplication: `out(i,j) = sum_k x(i,k) * y(k,j)`.
pub fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

/// Default workload sizes for gemm.
pub fn gemm_sizes() -> Vec<(&'static str, i64)> {
    vec![("m", 256), ("n", 256), ("p", 256)]
}

/// Default tile sizes for gemm.
pub fn gemm_tiles() -> Vec<(&'static str, i64)> {
    vec![("m", 64), ("n", 64), ("p", 64)]
}

/// Random inputs for gemm.
pub fn gemm_inputs(env: &SizeEnv, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let (m, n, p) = (dim(env, "m"), dim(env, "n"), dim(env, "p"));
    vec![
        rand_tensor(&mut r, &[m, p], -1.0, 1.0),
        rand_tensor(&mut r, &[p, n], -1.0, 1.0),
    ]
}

/// Reference implementation of gemm.
pub fn gemm_golden(inputs: &[Value], env: &SizeEnv) -> Vec<Value> {
    let (m, n, p) = (dim(env, "m"), dim(env, "n"), dim(env, "p"));
    let x = inputs[0].as_f32_slice();
    let y = inputs[1].as_f32_slice();
    let mut out = vec![0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0f32;
            for k in 0..p {
                acc += x[i * p + k] * y[k * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    vec![Value::tensor_f32(&[m, n], out)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::interp::Interpreter;
    use pphw_ir::size::Size;

    fn env(pairs: &[(&str, i64)]) -> SizeEnv {
        Size::env(pairs)
    }

    #[test]
    fn outerprod_matches_golden() {
        let sizes = [("m", 8), ("n", 12)];
        let prog = outerprod_program();
        let inputs = outerprod_inputs(&env(&sizes), 1);
        let got = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let want = outerprod_golden(&inputs, &env(&sizes));
        assert!(got[0].approx_eq(&want[0], 1e-5));
    }

    #[test]
    fn sumrows_matches_golden() {
        let sizes = [("m", 16), ("n", 32)];
        let prog = sumrows_program();
        let inputs = sumrows_inputs(&env(&sizes), 2);
        let got = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let want = sumrows_golden(&inputs, &env(&sizes));
        assert!(got[0].approx_eq(&want[0], 1e-4));
    }

    #[test]
    fn gemm_matches_golden() {
        let sizes = [("m", 8), ("n", 8), ("p", 16)];
        let prog = gemm_program();
        let inputs = gemm_inputs(&env(&sizes), 3);
        let got = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let want = gemm_golden(&inputs, &env(&sizes));
        assert!(got[0].approx_eq(&want[0], 1e-4));
    }
}
