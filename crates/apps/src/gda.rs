//! Gaussian discriminant analysis (GDA): accumulate the shared covariance
//! matrix of a two-class model, `sigma = Σ_i (x_i - μ_{y_i})ᵀ (x_i -
//! μ_{y_i})`, given samples, binary labels, and per-class means.
//!
//! The structure is the one the paper highlights (§6.2): per sample, a
//! vector subtraction feeds a vector outer product accumulated into a
//! `d×d` on-chip matrix — a naturally balanced nested metapipeline.

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::expr::Expr;
use pphw_ir::interp::Value;
use pphw_ir::pattern::Init;
use pphw_ir::size::SizeEnv;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;

use crate::data::{dim, rand_labels, rand_tensor, rng};

/// The GDA covariance program.
pub fn gda_program() -> Program {
    let mut b = ProgramBuilder::new("gda");
    let n = b.size("n");
    let d = b.size("d");
    let x = b.input("x", DType::F32, vec![n.clone(), d.clone()]);
    let y = b.input("y", DType::I32, vec![n.clone()]);
    let mu0 = b.input("mu0", DType::F32, vec![d.clone()]);
    let mu1 = b.input("mu1", DType::F32, vec![d.clone()]);
    let d2 = d.clone();
    let out = b.with_ctx(|c| {
        c.multi_fold(
            "sigma",
            vec![n.clone()],
            vec![d.clone(), d.clone()],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            move |c, idx| {
                let i = idx[0];
                let label = c.scalar("label", c.read(y, vec![c.var(i)]));
                // sub(p) = x(i,p) - mu_{y_i}(p)
                let sub = c.map(vec![d2.clone()], |mc, p| {
                    let p = p[0];
                    let mu = mc.select(
                        mc.lt(mc.var(label), mc.int(1)),
                        mc.read(mu0, vec![mc.var(p)]),
                        mc.read(mu1, vec![mc.var(p)]),
                    );
                    mc.sub(mc.read(x, vec![mc.var(i), mc.var(p)]), mu)
                });
                let dd = d2.clone();
                (
                    vec![Expr::int(0), Expr::int(0)],
                    vec![dd.clone(), dd.clone()],
                    Box::new(move |uc: &mut pphw_ir::builder::Ctx<'_>, acc| {
                        uc.map(vec![dd.clone(), dd.clone()], |mc, ab| {
                            let (a, b2) = (ab[0], ab[1]);
                            mc.add(
                                mc.read(acc, vec![mc.var(a), mc.var(b2)]),
                                mc.mul(
                                    mc.read(sub, vec![mc.var(a)]),
                                    mc.read(sub, vec![mc.var(b2)]),
                                ),
                            )
                        })
                    }),
                )
            },
            Some(Box::new(|c2: &mut pphw_ir::builder::Ctx<'_>, a, b2| {
                c2.add(c2.var(a), c2.var(b2))
            })),
        )
    });
    b.finish(vec![out])
}

/// Default workload sizes.
pub fn gda_sizes() -> Vec<(&'static str, i64)> {
    vec![("n", 4096), ("d", 32)]
}

/// Default tile sizes (the feature dimension stays on chip).
pub fn gda_tiles() -> Vec<(&'static str, i64)> {
    vec![("n", 256)]
}

/// Random samples, labels, and class means.
pub fn gda_inputs(env: &SizeEnv, seed: u64) -> Vec<Value> {
    let mut r = rng(seed);
    let (n, d) = (dim(env, "n"), dim(env, "d"));
    vec![
        rand_tensor(&mut r, &[n, d], -2.0, 2.0),
        rand_labels(&mut r, n, 2),
        rand_tensor(&mut r, &[d], -1.0, 1.0),
        rand_tensor(&mut r, &[d], -1.0, 1.0),
    ]
}

/// Reference implementation.
pub fn gda_golden(inputs: &[Value], env: &SizeEnv) -> Vec<Value> {
    let (n, d) = (dim(env, "n"), dim(env, "d"));
    let x = inputs[0].as_f32_slice();
    let y = inputs[1].as_f32_slice();
    let mu0 = inputs[2].as_f32_slice();
    let mu1 = inputs[3].as_f32_slice();
    let mut sigma = vec![0f32; d * d];
    let mut sub = vec![0f32; d];
    for i in 0..n {
        let mu = if y[i] < 1.0 { &mu0 } else { &mu1 };
        for p in 0..d {
            sub[p] = x[i * d + p] - mu[p];
        }
        for a in 0..d {
            for b in 0..d {
                sigma[a * d + b] += sub[a] * sub[b];
            }
        }
    }
    vec![Value::tensor_f32(&[d, d], sigma)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pphw_ir::interp::Interpreter;
    use pphw_ir::size::Size;

    #[test]
    fn gda_matches_golden() {
        let sizes = [("n", 64), ("d", 8)];
        let env = Size::env(&sizes);
        let prog = gda_program();
        prog.validate().unwrap();
        let inputs = gda_inputs(&env, 11);
        let got = Interpreter::new(&prog, &sizes).run(inputs.clone()).unwrap();
        let want = gda_golden(&inputs, &env);
        assert!(got[0].approx_eq(&want[0], 1e-3));
    }
}
