//! Parallelization race detector.
//!
//! A `MultiFold` or `GroupByFold` combine runs as a *parallel* reduction
//! (a lane tree, or concurrent bucket merges) the moment the pipeline
//! applies `inner_par > 1`. That is only sound when the combine is
//! associative and commutative; anything else reorders non-reorderable
//! updates — a race whose symptom is a silently wrong answer on some
//! schedules.
//!
//! The recognizer is *structural* (and therefore sound but incomplete):
//! it inlines the combine body to a single expression over the two
//! operands and accepts exactly
//!
//! - `a ⊕ b` / `b ⊕ a` for `⊕ ∈ {+, *, min, max, &&, ||}`, and
//! - the min/max-by-key select idiom
//!   `select(key(a) < key(b), a, b)` (any operand order, `<` or `<=`,
//!   key = the operand itself or one tuple field, the same on both sides)
//!   — the paper's argmin reduction, associative-commutative up to
//!   tie-breaking on equal keys.
//!
//! Combines proven correct by other means are admitted by path through
//! [`VerifyConfig::allow_combines`].

use pphw_ir::block::{Block, Op};
use pphw_ir::expr::{BinOp, Expr};
use pphw_ir::path::IrPath;
use pphw_ir::pattern::{GbfBody, Lambda, Pattern};
use pphw_ir::program::Program;
use pphw_ir::types::{Sym, SymTable};

use crate::{DiagCode, Severity, VerifyConfig, VerifyReport};

/// Walks the program and reports every combine that `cfg.inner_par`
/// would parallelize without a provably associative-commutative body.
pub fn check_races(prog: &Program, cfg: &VerifyConfig, report: &mut VerifyReport) {
    if cfg.inner_par <= 1 {
        return; // a serial reduction applies updates in order: no race
    }
    let root = IrPath::root(&prog.name);
    let mut check = |l: &Lambda, cpath: &IrPath| {
        let rendered = cpath.to_string();
        if cfg.allow_combines.contains(&rendered) {
            return;
        }
        if let Err(why) = combine_is_assoc_comm(l) {
            report.push(
                DiagCode::NonAssocCombine,
                Severity::Error,
                rendered,
                format!(
                    "combine is not provably associative-commutative ({why}); \
                     parallelizing it with inner_par={} races — allowlist the \
                     path if it is correct by construction",
                    cfg.inner_par
                ),
            );
        }
    };
    visit_combines(&prog.body, &prog.syms, &root, &mut check);
}

/// Paths of every combine the recognizer could not prove
/// associative-commutative (ignoring `inner_par` and the allowlist).
/// The DSE prefilter uses this to prune parallel candidates per program,
/// not per (program, parallelism) pair.
#[must_use]
pub fn non_assoc_combines(prog: &Program) -> Vec<String> {
    let mut found = Vec::new();
    let mut collect = |l: &Lambda, path: &IrPath| {
        if combine_is_assoc_comm(l).is_err() {
            found.push(path.to_string());
        }
    };
    visit_combines(
        &prog.body,
        &prog.syms,
        &IrPath::root(&prog.name),
        &mut collect,
    );
    found
}

/// Visits every combine lambda in the block (recursively), handing each
/// to `f` with its path (`…/combine[k]` / `…/combine`). The recursion
/// mirrors [`crate::ir_check`]'s traversal so both agree on paths.
fn visit_combines(
    block: &Block,
    syms: &SymTable,
    path: &IrPath,
    f: &mut impl FnMut(&Lambda, &IrPath),
) {
    for (i, stmt) in block.stmts.iter().enumerate() {
        let Op::Pattern(p) = &stmt.op else { continue };
        let at = path.stmt(syms, stmt, i);
        match p {
            Pattern::Map(m) => visit_combines(&m.body.body, syms, &at.child("body"), f),
            Pattern::MultiFold(mf) => {
                visit_combines(&mf.pre, syms, &at.child("pre"), f);
                for (k, u) in mf.updates.iter().enumerate() {
                    visit_combines(&u.body, syms, &at.child(format!("update[{k}]")), f);
                }
                for (k, c) in mf.combines.iter().enumerate() {
                    if let Some(l) = c {
                        let cpath = at.child(format!("combine[{k}]"));
                        f(l, &cpath);
                        visit_combines(&l.body, syms, &cpath, f);
                    }
                }
            }
            Pattern::FlatMap(fm) => visit_combines(&fm.body.body, syms, &at.child("body"), f),
            Pattern::GroupByFold(g) => {
                visit_combines(&g.pre, syms, &at.child("pre"), f);
                if let GbfBody::Element { update, .. } = &g.body {
                    visit_combines(&update.body, syms, &at.child("update"), f);
                }
                let cpath = at.child("combine");
                f(&g.combine, &cpath);
                visit_combines(&g.combine.body, syms, &cpath, f);
            }
        }
    }
}

/// Structural proof attempt. `Ok(())` means the combine is recognized as
/// associative-commutative; `Err` names the first obstruction.
pub fn combine_is_assoc_comm(l: &Lambda) -> Result<(), String> {
    if l.params.len() != 2 {
        return Err(format!("combine takes {} operands, not 2", l.params.len()));
    }
    let (a, b) = (l.params[0], l.params[1]);
    let body = inline_body(l)?;
    // Plain commutative-monoid operators over the two operands.
    if let Expr::Bin(op, x, y) = &body {
        if is_ac_op(*op) && is_operand_pair(x, y, a, b) {
            return Ok(());
        }
    }
    // Min/max-by-key select: select(key(x) < key(y), x, y).
    if let Expr::Select {
        cond,
        if_true,
        if_false,
    } = &body
    {
        if let Expr::Bin(BinOp::Lt | BinOp::Le, k1, k2) = cond.as_ref() {
            if let (Some((x, key1)), Some((y, key2))) = (key_of(k1), key_of(k2)) {
                let distinct = x != y && (x == a || x == b) && (y == a || y == b);
                let same_key = key1 == key2;
                let arms = matches!(
                    (if_true.as_ref(), if_false.as_ref()),
                    (Expr::Var(t), Expr::Var(fv))
                        if (*t == x && *fv == y) || (*t == y && *fv == x)
                );
                if distinct && same_key && arms {
                    return Ok(());
                }
            }
        }
        return Err("select form is not the min/max-by-key idiom".to_string());
    }
    Err(format!(
        "body is not a commutative operator over both operands: {}",
        describe(&body)
    ))
}

/// Inlines a straight-line, expression-only combine body into a single
/// expression over the lambda parameters.
fn inline_body(l: &Lambda) -> Result<Expr, String> {
    let mut defs: Vec<(Sym, Expr)> = Vec::new();
    for stmt in &l.body.stmts {
        let Op::Expr(e) = &stmt.op else {
            return Err("combine body contains a non-scalar operation".to_string());
        };
        if stmt.syms.len() != 1 {
            return Err("combine statement binds multiple symbols".to_string());
        }
        let inlined = e.subst_vars(&|s| {
            defs.iter()
                .rev()
                .find(|(d, _)| *d == s)
                .map(|(_, e)| e.clone())
        });
        defs.push((stmt.syms[0], inlined));
    }
    if l.body.result.len() != 1 {
        return Err(format!(
            "combine body yields {} results, not 1",
            l.body.result.len()
        ));
    }
    let r = l.body.result[0];
    if let Some((_, e)) = defs.iter().rev().find(|(d, _)| *d == r) {
        return Ok(e.clone());
    }
    // The result is a parameter or free symbol: `(a, b) -> a` is a
    // projection, never commutative.
    Ok(Expr::Var(r))
}

fn is_ac_op(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or
    )
}

/// `true` when `{x, y}` is exactly `{Var(a), Var(b)}` in either order.
fn is_operand_pair(x: &Expr, y: &Expr, a: Sym, b: Sym) -> bool {
    matches!(
        (x, y),
        (Expr::Var(p), Expr::Var(q))
            if (*p == a && *q == b) || (*p == b && *q == a)
    )
}

/// Decomposes a key expression: `Var(x)` is `(x, None)`, `Field(Var(x), i)`
/// is `(x, Some(i))`; anything else is unrecognized.
fn key_of(e: &Expr) -> Option<(Sym, Option<usize>)> {
    match e {
        Expr::Var(s) => Some((*s, None)),
        Expr::Field(inner, i) => match inner.as_ref() {
            Expr::Var(s) => Some((*s, Some(*i))),
            _ => None,
        },
        _ => None,
    }
}

fn describe(e: &Expr) -> &'static str {
    match e {
        Expr::Lit(_) => "a literal",
        Expr::Var(_) => "a bare operand/projection",
        Expr::SizeOf(_) => "a size value",
        Expr::Un(..) => "a unary operation",
        Expr::Bin(..) => "a non-commutative binary operation",
        Expr::Select { .. } => "a select",
        Expr::Tuple(_) => "a tuple construction",
        Expr::Field(..) => "a field projection",
        Expr::Read { .. } => "a tensor read",
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use pphw_ir::block::Stmt;
    use pphw_ir::types::Type;

    use super::*;

    /// Builds `(a, b) -> body(a, b)` as the builder would: one statement
    /// binding the combined value, sealed as the block result.
    fn combine(body: impl Fn(Expr, Expr) -> Expr) -> Lambda {
        let mut syms = SymTable::new();
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let r = syms.fresh("comb", Type::f32());
        let block = Block::with_result(
            vec![Stmt::new(r, Op::Expr(body(Expr::var(a), Expr::var(b))))],
            r,
        );
        Lambda::new(vec![a, b], block)
    }

    #[test]
    fn add_mul_min_max_are_accepted() {
        assert!(combine_is_assoc_comm(&combine(|a, b| a.add(b))).is_ok());
        assert!(combine_is_assoc_comm(&combine(|a, b| a.mul(b))).is_ok());
        assert!(combine_is_assoc_comm(&combine(|a, b| Expr::Bin(
            BinOp::Min,
            Box::new(a),
            Box::new(b)
        )))
        .is_ok());
        assert!(
            combine_is_assoc_comm(&combine(|a, b| b.add(a))).is_ok(),
            "either order"
        );
    }

    #[test]
    fn sub_div_and_projection_are_rejected() {
        assert!(combine_is_assoc_comm(&combine(|a, b| a.sub(b))).is_err());
        assert!(combine_is_assoc_comm(&combine(|a, b| a.div(b))).is_err());
        assert!(combine_is_assoc_comm(&combine(|a, _b| a)).is_err());
    }

    #[test]
    fn argmin_select_is_accepted() {
        // kmeans: select(a._1 < b._1, a, b) over (dist, index) tuples.
        let ok = combine(|a, b| Expr::select(a.clone().field(0).lt(b.clone().field(0)), a, b));
        assert!(combine_is_assoc_comm(&ok).is_ok());
    }

    #[test]
    fn select_with_mismatched_keys_is_rejected() {
        // Keys project different fields: not a by-key min.
        let bad = combine(|a, b| Expr::select(a.clone().field(0).lt(b.clone().field(1)), a, b));
        assert!(combine_is_assoc_comm(&bad).is_err());
    }

    #[test]
    fn multi_statement_bodies_are_inlined() {
        // t = a + b; comb = t  (via two statements)
        let mut syms = SymTable::new();
        let a = syms.fresh("a", Type::f32());
        let b = syms.fresh("b", Type::f32());
        let t = syms.fresh("t", Type::f32());
        let block = Block::with_result(
            vec![Stmt::new(t, Op::Expr(Expr::var(a).add(Expr::var(b))))],
            t,
        );
        assert!(combine_is_assoc_comm(&Lambda::new(vec![a, b], block)).is_ok());
    }
}
