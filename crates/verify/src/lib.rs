//! # pphw-verify — static semantic analysis
//!
//! A multi-pass analyzer over PPL programs and generated hardware designs,
//! with stable diagnostic codes (`PPHW0xx`) and a machine-readable JSON
//! report. Four analyzer families:
//!
//! 1. **IR verifier** ([`ir_check`]) — def-before-use, binding discipline,
//!    output/update arity, shape and rank consistency (cross-checked with
//!    [`pphw_ir::infer`]), accessor legality. Because blocks are
//!    straight-line with single bindings, def-before-use also establishes
//!    acyclicity.
//! 2. **Parallelization race detector** ([`race`]) — a `MultiFold` /
//!    `GroupByFold` combine that is not structurally provably
//!    associative-commutative is a data race the moment `inner_par > 1`
//!    parallelizes the reduction; an allowlist of node paths is the escape
//!    hatch for combines proven correct by other means.
//! 3. **Metapipeline hazard checker** ([`hazard`]) — inter-stage RAW/WAW
//!    on shared buffers lacking double-buffering, sibling-parallel write
//!    conflicts, on-chip budget and degenerate-capacity pre-checks over
//!    [`pphw_hw::design::Design`].
//! 4. **Dataflow-balance analyzer** ([`flow`]) — SDF-style balance
//!    equations over the producer→consumer channel graph of each
//!    metapipeline: statically-guaranteed deadlocks and stalls on
//!    undersized FIFOs/double buffers, FIFO rate inconsistencies,
//!    starved and over-provisioned channels, plus minimal safe capacity
//!    inference ([`flow::infer_capacities`]) and a contention-free
//!    bottleneck predictor cross-checked against the simulator.
//!
//! Every diagnostic carries a human-readable node path (see
//! [`pphw_ir::path`]), e.g. `kmeans/best[1]/combine[0]`, so errors point
//! at a node instead of a bare symbol id.

pub mod flow;
pub mod hazard;
pub mod ir_check;
pub mod race;

use std::collections::BTreeSet;
use std::fmt;

use pphw_hw::design::Design;
use pphw_ir::program::Program;

/// Stable diagnostic codes. The numeric ranges group the families:
/// `001`–`009` IR well-formedness, `010`–`019` parallelization races,
/// `020`–`029` metapipeline hazards, `030`–`039` area legality,
/// `040`–`049` dataflow balance.
///
/// Codes are part of the tool's contract: tests and downstream consumers
/// match on them, so a code is never renumbered or reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// Symbol referenced before binding (or out of table range).
    UnboundSym,
    /// Symbol bound more than once.
    Rebound,
    /// Statement/update/combine arity disagrees with the operation.
    OutputArity,
    /// Pattern domain arity disagrees with its index parameters.
    BadDomain,
    /// A size expression references an undeclared size variable.
    UnknownSizeVar,
    /// An expression is ill-typed per [`pphw_ir::infer`].
    IllTypedExpr,
    /// A read/slice/copy indexes a tensor with the wrong rank.
    RankMismatch,
    /// An accumulator update or initializer disagrees with the
    /// accumulator's shape or element width.
    UpdateShapeMismatch,
    /// A parallelized reduction's combine is not provably
    /// associative-commutative.
    NonAssocCombine,
    /// Two sibling stages of a parallel controller write the same buffer.
    SiblingWriteConflict,
    /// Metapipeline read-after-write on a buffer without double-buffering.
    MetapipelineRaw,
    /// Metapipeline write-after-write on a shared single buffer.
    MetapipelineWaw,
    /// Design exceeds the on-chip memory budget.
    OverBudget,
    /// A buffer has zero capacity.
    DegenerateBuffer,
    /// A FIFO channel's producer and consumer move different volumes per
    /// metapipeline iteration (destructive reads accumulate or underflow).
    RateMismatch,
    /// A channel's capacity cannot hold even one producer token: the
    /// metapipeline is statically guaranteed to deadlock.
    ChannelDeadlock,
    /// A forward channel holds exactly one token: the producer stalls
    /// until the consumer drains it, serializing the metapipeline.
    ChannelStall,
    /// A FIFO/double buffer is read but never written: its consumer can
    /// never be satisfied.
    StarvedChannel,
    /// A channel has more capacity than full overlap can use (warning;
    /// capacity inference would reclaim the area).
    OverProvisionedChannel,
}

impl DiagCode {
    /// The stable `PPHW0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::UnboundSym => "PPHW001",
            DiagCode::Rebound => "PPHW002",
            DiagCode::OutputArity => "PPHW003",
            DiagCode::BadDomain => "PPHW004",
            DiagCode::UnknownSizeVar => "PPHW005",
            DiagCode::IllTypedExpr => "PPHW006",
            DiagCode::RankMismatch => "PPHW007",
            DiagCode::UpdateShapeMismatch => "PPHW008",
            DiagCode::NonAssocCombine => "PPHW010",
            DiagCode::SiblingWriteConflict => "PPHW011",
            DiagCode::MetapipelineRaw => "PPHW020",
            DiagCode::MetapipelineWaw => "PPHW021",
            DiagCode::OverBudget => "PPHW030",
            DiagCode::DegenerateBuffer => "PPHW031",
            DiagCode::RateMismatch => "PPHW040",
            DiagCode::ChannelDeadlock => "PPHW041",
            DiagCode::ChannelStall => "PPHW042",
            DiagCode::StarvedChannel => "PPHW043",
            DiagCode::OverProvisionedChannel => "PPHW044",
        }
    }

    /// One-line description for the diagnostic-code table.
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::UnboundSym => "symbol referenced before binding",
            DiagCode::Rebound => "symbol bound more than once",
            DiagCode::OutputArity => "statement or lambda arity mismatch",
            DiagCode::BadDomain => "pattern domain/index arity mismatch",
            DiagCode::UnknownSizeVar => "undeclared size variable",
            DiagCode::IllTypedExpr => "ill-typed scalar expression",
            DiagCode::RankMismatch => "tensor access with wrong rank",
            DiagCode::UpdateShapeMismatch => "accumulator update/init shape mismatch",
            DiagCode::NonAssocCombine => {
                "parallelized combine not provably associative-commutative"
            }
            DiagCode::SiblingWriteConflict => "sibling parallel stages write the same buffer",
            DiagCode::MetapipelineRaw => "metapipeline RAW on non-double-buffered memory",
            DiagCode::MetapipelineWaw => "metapipeline WAW on shared single memory",
            DiagCode::OverBudget => "design exceeds on-chip memory budget",
            DiagCode::DegenerateBuffer => "zero-capacity buffer",
            DiagCode::RateMismatch => "FIFO channel with rate-inconsistent endpoints",
            DiagCode::ChannelDeadlock => "channel cannot hold one token (guaranteed deadlock)",
            DiagCode::ChannelStall => "single-token channel serializes the metapipeline",
            DiagCode::StarvedChannel => "channel read but never written",
            DiagCode::OverProvisionedChannel => "channel capacity beyond what overlap can use",
        }
    }

    /// Every code, in numeric order (drives the DESIGN.md table).
    pub fn all() -> &'static [DiagCode] {
        &[
            DiagCode::UnboundSym,
            DiagCode::Rebound,
            DiagCode::OutputArity,
            DiagCode::BadDomain,
            DiagCode::UnknownSizeVar,
            DiagCode::IllTypedExpr,
            DiagCode::RankMismatch,
            DiagCode::UpdateShapeMismatch,
            DiagCode::NonAssocCombine,
            DiagCode::SiblingWriteConflict,
            DiagCode::MetapipelineRaw,
            DiagCode::MetapipelineWaw,
            DiagCode::OverBudget,
            DiagCode::DegenerateBuffer,
            DiagCode::RateMismatch,
            DiagCode::ChannelDeadlock,
            DiagCode::ChannelStall,
            DiagCode::StarvedChannel,
            DiagCode::OverProvisionedChannel,
        ]
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational/heuristic finding; does not fail verification.
    Warning,
    /// A violated invariant; verification fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A resolved source location for a diagnostic: the byte span plus its
/// precomputed 1-based line/column, so consumers can render
/// `file:line:col` without re-scanning the source. Only present on
/// diagnostics whose program came from parsed `.ppl` text (see
/// [`VerifyReport::attach_spans`]); builder-constructed programs locate
/// findings by path alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagSpan {
    /// Byte offset of the first character in the source.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
    /// 1-based column of `start`.
    pub col: usize,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity.
    pub severity: Severity,
    /// Human-readable node path (`prog/stmt[i]/…` or `design/ctrl/buf`).
    pub path: String,
    /// What went wrong, in terms of the node at `path`.
    pub message: String,
    /// Source location, when the program was parsed from text.
    pub span: Option<DiagSpan>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity,
            self.code.code(),
            self.path,
            self.message
        )
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct VerifyConfig {
    /// The inner parallelism the pipeline would apply: combines are only a
    /// race when `inner_par > 1` parallelizes them.
    pub inner_par: u32,
    /// On-chip budget for the area pre-check; `None` skips it.
    pub on_chip_budget_bytes: Option<u64>,
    /// Node paths of combines the user asserts are associative-commutative
    /// despite the structural analysis not proving it (the escape hatch).
    pub allow_combines: BTreeSet<String>,
}

impl VerifyConfig {
    /// Config for a run at the given parallelism.
    #[must_use]
    pub fn with_inner_par(inner_par: u32) -> VerifyConfig {
        VerifyConfig {
            inner_par,
            ..VerifyConfig::default()
        }
    }

    /// Adds a combine path to the allowlist.
    #[must_use]
    pub fn allow_combine(mut self, path: impl Into<String>) -> VerifyConfig {
        self.allow_combines.insert(path.into());
        self
    }
}

/// The collected findings of one or more analyzer runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All findings, in traversal order.
    pub diagnostics: Vec<Diagnostic>,
    /// Display name of the source file the spans index into (set by
    /// [`attach_spans`](VerifyReport::attach_spans); `None` for builder
    /// programs).
    pub file: Option<String>,
}

impl VerifyReport {
    /// An empty (clean) report.
    #[must_use]
    pub fn new() -> VerifyReport {
        VerifyReport::default()
    }

    /// `true` when no error-severity diagnostic was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// `true` if any diagnostic carries `code`.
    #[must_use]
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Appends all of `other`'s findings.
    pub fn merge(&mut self, other: VerifyReport) {
        self.diagnostics.extend(other.diagnostics);
        if self.file.is_none() {
            self.file = other.file;
        }
    }

    /// Resolves source locations for every diagnostic whose path (or an
    /// ancestor of it) is recorded in `map`, using `src` to compute
    /// line/column. Call this after verifying a program parsed from text;
    /// builder programs have no map, so their reports stay span-free.
    pub fn attach_spans(&mut self, map: &pphw_ir::span::SourceMap, src: &str) {
        self.file = Some(map.file.clone());
        for d in &mut self.diagnostics {
            if let Some(span) = map.lookup(&d.path) {
                let (line, col) = pphw_ir::span::line_col(src, span.start);
                d.span = Some(DiagSpan {
                    start: span.start,
                    end: span.end,
                    line,
                    col,
                });
            }
        }
    }

    pub(crate) fn push(
        &mut self,
        code: DiagCode,
        severity: Severity,
        path: impl fmt::Display,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            path: path.to_string(),
            message: message.into(),
            span: None,
        });
    }

    /// Renders the report as JSON (machine-readable; the `verify` bin and
    /// CI gate consume this).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"error_count\":");
        out.push_str(&self.error_count().to_string());
        if let Some(file) = &self.file {
            out.push_str(&format!(",\"file\":\"{}\"", escape_json(file)));
        }
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"message\":\"{}\"",
                d.code.code(),
                d.severity,
                escape_json(&d.path),
                escape_json(&d.message)
            ));
            if let Some(s) = &d.span {
                out.push_str(&format!(
                    ",\"span\":{{\"start\":{},\"end\":{},\"line\":{},\"col\":{}}}",
                    s.start, s.end, s.line, s.col
                ));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// One line per finding (empty string when clean). Findings with a
    /// resolved source location are prefixed `file:line:col: `.
    #[must_use]
    pub fn to_text(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| match (&self.file, &d.span) {
                (Some(file), Some(s)) => format!("{file}:{}:{}: {d}\n", s.line, s.col),
                _ => format!("{d}\n"),
            })
            .collect::<String>()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the program-level analyzers (IR verifier + race detector).
#[must_use]
pub fn verify_program(prog: &Program, cfg: &VerifyConfig) -> VerifyReport {
    let mut report = VerifyReport::new();
    ir_check::check_program(prog, &mut report);
    // Racing on a structurally broken program would produce noise on top
    // of noise; combines are still analyzed because their blocks were
    // already visited above only for well-formedness, not semantics.
    race::check_races(prog, cfg, &mut report);
    report
}

/// Runs the design-level analyzers (metapipeline hazards + area checks +
/// dataflow balance).
#[must_use]
pub fn verify_design(design: &Design, cfg: &VerifyConfig) -> VerifyReport {
    let mut report = VerifyReport::new();
    hazard::check_design(design, cfg, &mut report);
    flow::check_design(design, cfg, &mut report);
    report
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = DiagCode::all();
        let codes: BTreeSet<&str> = all.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), all.len(), "codes must be unique");
        assert_eq!(DiagCode::NonAssocCombine.code(), "PPHW010");
        assert_eq!(DiagCode::MetapipelineRaw.code(), "PPHW020");
        assert_eq!(DiagCode::OverBudget.code(), "PPHW030");
    }

    #[test]
    fn report_json_escapes_and_counts() {
        let mut r = VerifyReport::new();
        r.push(
            DiagCode::UnboundSym,
            Severity::Error,
            "p/x[0]",
            "bad \"quote\"",
        );
        r.push(DiagCode::DegenerateBuffer, Severity::Warning, "d/b", "w");
        assert_eq!(r.error_count(), 1);
        assert!(!r.is_clean());
        let json = r.to_json();
        assert!(json.starts_with("{\"error_count\":1,"), "{json}");
        assert!(json.contains("\\\"quote\\\""), "{json}");
        assert!(json.contains("PPHW001"), "{json}");
    }

    #[test]
    fn attach_spans_resolves_locations() {
        let src = "program p(n) {\n  let x = 1\n}\n";
        let mut map = pphw_ir::span::SourceMap::new("t.ppl");
        map.record("p/x[0]", pphw_ir::span::Span::new(17, 26));
        let mut r = VerifyReport::new();
        r.push(DiagCode::UnboundSym, Severity::Error, "p/x[0]/body", "m");
        r.push(DiagCode::Rebound, Severity::Error, "q/z[9]", "m");
        r.attach_spans(&map, src);
        assert_eq!(r.file.as_deref(), Some("t.ppl"));
        // First diagnostic resolves via ancestor fallback; second has no
        // recorded path and stays span-free.
        let s = r.diagnostics[0].span.expect("resolved");
        assert_eq!((s.line, s.col), (2, 3));
        assert_eq!(r.diagnostics[1].span, None);
        let text = r.to_text();
        assert!(text.starts_with("t.ppl:2:3: error [PPHW001]"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"file\":\"t.ppl\""), "{json}");
        assert!(
            json.contains("\"span\":{\"start\":17,\"end\":26,\"line\":2,\"col\":3}"),
            "{json}"
        );
    }

    #[test]
    fn merge_concatenates() {
        let mut a = VerifyReport::new();
        a.push(DiagCode::Rebound, Severity::Error, "p", "m");
        let mut b = VerifyReport::new();
        b.push(DiagCode::OverBudget, Severity::Error, "d", "m");
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
        assert!(a.has(DiagCode::OverBudget));
    }

    #[test]
    fn spans_survive_merging_multi_family_reports() {
        let src = "program p(n) {\n  let x = 1\n}\n";
        let mut map = pphw_ir::span::SourceMap::new("t.ppl");
        map.record("p/x[0]", pphw_ir::span::Span::new(17, 26));

        // Frontend-family report with spans already attached.
        let mut front = VerifyReport::new();
        front.push(DiagCode::NonAssocCombine, Severity::Error, "p/x[0]", "m");
        front.attach_spans(&map, src);
        let resolved = front.diagnostics[0].span.expect("resolved before merge");

        // Design-family report: no source paths, stays span-free.
        let mut design = VerifyReport::new();
        design.push(DiagCode::ChannelStall, Severity::Error, "top/tile", "m");

        front.merge(design);
        assert_eq!(front.diagnostics.len(), 2);
        assert_eq!(
            front.diagnostics[0].span,
            Some(resolved),
            "merging must not drop previously attached spans"
        );
        assert_eq!(front.diagnostics[1].span, None);
        assert_eq!(front.file.as_deref(), Some("t.ppl"));

        // Attaching after the merge resolves every mapped path without
        // disturbing unmapped design-level diagnostics.
        let mut merged = VerifyReport::new();
        merged.push(DiagCode::NonAssocCombine, Severity::Error, "p/x[0]", "m");
        merged.merge({
            let mut d = VerifyReport::new();
            d.push(DiagCode::ChannelDeadlock, Severity::Error, "top/fifo", "m");
            d
        });
        merged.attach_spans(&map, src);
        assert_eq!(merged.diagnostics[0].span, Some(resolved));
        assert_eq!(merged.diagnostics[1].span, None);
        let text = merged.to_text();
        assert!(text.contains("t.ppl:2:3: error [PPHW010]"), "{text}");
        assert!(text.contains("[PPHW041]"), "{text}");
    }
}
