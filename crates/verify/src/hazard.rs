//! Metapipeline hazard checker and area-legality pre-checks.
//!
//! Runs over a generated [`Design`] *after* hardware generation's own
//! double-buffer promotion, so any surviving cross-stage sharing is a real
//! hazard, not a not-yet-promoted buffer:
//!
//! - **RAW** (`PPHW020`): a metapipeline stage writes a plain
//!   `Buffer`/`Fifo` that a later stage reads. With stages overlapped
//!   across iterations, the reader of iteration *k* observes the writer of
//!   iteration *k+1* unless the memory is double-buffered (Table 4's
//!   coupling rule — exactly the set `promote_double_buffers` upgrades).
//! - **WAW** (`PPHW021`): two distinct metapipeline stages write the same
//!   single-buffered memory; iteration overlap interleaves their writes.
//! - **Sibling writes** (`PPHW011`): two stages of a `Parallel` controller
//!   write the same buffer concurrently — a race for any buffer kind
//!   except a `Cam` (whose keyed merge is order-independent by
//!   construction when the combine passed the race detector).
//! - **Area** (`PPHW030`/`PPHW031`): the design's on-chip bytes exceed the
//!   configured budget, or a buffer has zero capacity.

use std::collections::BTreeSet;

use pphw_hw::design::{BufId, Buffer, BufferKind, CtrlKind, Design, Node};

use crate::{DiagCode, Severity, VerifyConfig, VerifyReport};

/// Checks the design, appending findings to `report`.
pub fn check_design(design: &Design, cfg: &VerifyConfig, report: &mut VerifyReport) {
    walk(&design.root, design, report);
    check_area(design, cfg, report);
}

/// A buffer kind that couples metapipeline stages only when promoted:
/// the same set `promote_double_buffers` considers. `DoubleBuffer` is the
/// fix, `Cache`/`Cam` have their own coherence story (tagged misses /
/// keyed merge).
fn hazardous_kind(kind: BufferKind) -> bool {
    matches!(kind, BufferKind::Buffer | BufferKind::Fifo)
}

fn buffer(design: &Design, id: BufId) -> Option<&Buffer> {
    design.buffers.get(id.0)
}

fn rw(node: &Node) -> (BTreeSet<BufId>, BTreeSet<BufId>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    node.visit_units(&mut |u| {
        reads.extend(u.reads.iter().copied());
        writes.extend(u.writes.iter().copied());
    });
    (reads, writes)
}

fn walk(node: &Node, design: &Design, report: &mut VerifyReport) {
    let Node::Ctrl(c) = node else { return };
    let path = format!("{}/{}", design.name, c.name);
    match c.kind {
        CtrlKind::Metapipeline => {
            let stage_rw: Vec<_> = c.stages.iter().map(rw).collect();
            for i in 0..stage_rw.len() {
                for j in (i + 1)..stage_rw.len() {
                    for w in &stage_rw[i].1 {
                        let Some(b) = buffer(design, *w) else {
                            continue;
                        };
                        if !hazardous_kind(b.kind) {
                            continue;
                        }
                        if stage_rw[j].0.contains(w) {
                            report.push(
                                DiagCode::MetapipelineRaw,
                                Severity::Error,
                                format!("{path}/{}", b.name),
                                format!(
                                    "stage `{}` writes {} `{}` read by later stage `{}` \
                                     without double-buffering: overlapped iterations race",
                                    c.stages[i].name(),
                                    b.kind,
                                    b.name,
                                    c.stages[j].name()
                                ),
                            );
                        }
                        if stage_rw[j].1.contains(w) {
                            report.push(
                                DiagCode::MetapipelineWaw,
                                Severity::Error,
                                format!("{path}/{}", b.name),
                                format!(
                                    "stages `{}` and `{}` both write {} `{}`: overlapped \
                                     iterations interleave their writes",
                                    c.stages[i].name(),
                                    c.stages[j].name(),
                                    b.kind,
                                    b.name
                                ),
                            );
                        }
                    }
                }
            }
        }
        CtrlKind::Parallel => {
            let stage_w: Vec<_> = c.stages.iter().map(|s| rw(s).1).collect();
            for i in 0..stage_w.len() {
                for j in (i + 1)..stage_w.len() {
                    for w in stage_w[i].intersection(&stage_w[j]) {
                        let Some(b) = buffer(design, *w) else {
                            continue;
                        };
                        if b.kind == BufferKind::Cam {
                            continue;
                        }
                        report.push(
                            DiagCode::SiblingWriteConflict,
                            Severity::Error,
                            format!("{path}/{}", b.name),
                            format!(
                                "parallel siblings `{}` and `{}` both write {} `{}`",
                                c.stages[i].name(),
                                c.stages[j].name(),
                                b.kind,
                                b.name
                            ),
                        );
                    }
                }
            }
        }
        CtrlKind::Sequential => {}
    }
    for s in &c.stages {
        walk(s, design, report);
    }
}

fn check_area(design: &Design, cfg: &VerifyConfig, report: &mut VerifyReport) {
    if let Some(budget) = cfg.on_chip_budget_bytes {
        let used = design.on_chip_bytes();
        if used > budget {
            report.push(
                DiagCode::OverBudget,
                Severity::Error,
                design.name.clone(),
                format!("design needs {used} on-chip bytes, budget is {budget}"),
            );
        }
    }
    for b in &design.buffers {
        if b.words == 0 {
            report.push(
                DiagCode::DegenerateBuffer,
                Severity::Error,
                format!("{}/{}", design.name, b.name),
                format!("buffer `{}` has zero capacity", b.name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use pphw_hw::design::{Ctrl, DesignStyle, Unit, UnitKind};

    use super::*;

    fn buf(id: usize, name: &str, kind: BufferKind) -> Buffer {
        Buffer {
            id: BufId(id),
            name: name.into(),
            words: 64,
            word_bytes: 4,
            kind,
            banks: 1,
            readers: 1,
            writers: 1,
        }
    }

    fn unit(name: &str, reads: Vec<BufId>, writes: Vec<BufId>) -> Node {
        Node::Unit(Unit {
            name: name.into(),
            kind: UnitKind::Vector { lanes: 1 },
            elems: 64,
            ops_per_elem: 1,
            depth: 4,
            streams: vec![],
            reads,
            writes,
        })
    }

    fn design(kind: CtrlKind, stages: Vec<Node>, buffers: Vec<Buffer>) -> Design {
        Design {
            name: "t".into(),
            style: DesignStyle::Metapipelined,
            root: Node::Ctrl(Ctrl {
                name: "top".into(),
                kind,
                iters: 4,
                stages,
            }),
            buffers,
        }
    }

    fn check(d: &Design) -> VerifyReport {
        let mut r = VerifyReport::new();
        check_design(d, &VerifyConfig::default(), &mut r);
        r
    }

    #[test]
    fn raw_through_plain_buffer_is_pphw020() {
        let d = design(
            CtrlKind::Metapipeline,
            vec![
                unit("load", vec![], vec![BufId(0)]),
                unit("compute", vec![BufId(0)], vec![]),
            ],
            vec![buf(0, "tile", BufferKind::Buffer)],
        );
        let r = check(&d);
        assert!(r.has(DiagCode::MetapipelineRaw), "{}", r.to_text());
    }

    #[test]
    fn raw_through_double_buffer_is_clean() {
        let d = design(
            CtrlKind::Metapipeline,
            vec![
                unit("load", vec![], vec![BufId(0)]),
                unit("compute", vec![BufId(0)], vec![]),
            ],
            vec![buf(0, "tile", BufferKind::DoubleBuffer)],
        );
        assert!(check(&d).is_clean());
    }

    #[test]
    fn waw_between_stages_is_pphw021() {
        let d = design(
            CtrlKind::Metapipeline,
            vec![
                unit("a", vec![], vec![BufId(0)]),
                unit("b", vec![], vec![BufId(0)]),
            ],
            vec![buf(0, "acc", BufferKind::Buffer)],
        );
        assert!(check(&d).has(DiagCode::MetapipelineWaw));
    }

    #[test]
    fn sibling_parallel_writes_are_pphw011() {
        let d = design(
            CtrlKind::Parallel,
            vec![
                unit("a", vec![], vec![BufId(0)]),
                unit("b", vec![], vec![BufId(0)]),
            ],
            vec![buf(0, "shared", BufferKind::Buffer)],
        );
        assert!(check(&d).has(DiagCode::SiblingWriteConflict));
    }

    #[test]
    fn sequential_sharing_is_legal() {
        let d = design(
            CtrlKind::Sequential,
            vec![
                unit("a", vec![], vec![BufId(0)]),
                unit("b", vec![BufId(0)], vec![BufId(0)]),
            ],
            vec![buf(0, "acc", BufferKind::Buffer)],
        );
        assert!(check(&d).is_clean());
    }

    #[test]
    fn budget_and_degenerate_buffers_flagged() {
        let mut d = design(
            CtrlKind::Sequential,
            vec![unit("a", vec![], vec![BufId(0)])],
            vec![buf(0, "acc", BufferKind::Buffer)],
        );
        d.buffers[0].words = 0;
        let mut r = VerifyReport::new();
        let cfg = VerifyConfig {
            on_chip_budget_bytes: Some(1),
            ..VerifyConfig::default()
        };
        // words=0 means 0 bytes, so force the budget check with a second
        // non-empty buffer.
        d.buffers.push(buf(1, "big", BufferKind::Buffer));
        check_design(&d, &cfg, &mut r);
        assert!(r.has(DiagCode::DegenerateBuffer), "{}", r.to_text());
        assert!(r.has(DiagCode::OverBudget), "{}", r.to_text());
    }
}
