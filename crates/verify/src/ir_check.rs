//! IR well-formedness verifier.
//!
//! Mirrors the traversal of [`Program::validate`] but collects *every*
//! finding (instead of stopping at the first), attaches an
//! [`IrPath`](pphw_ir::path::IrPath) to each, and layers semantic checks
//! on top of the structural ones: expression typing via
//! [`pphw_ir::infer`], tensor-access rank checks, and accumulator
//! update/initializer shape legality. Def-before-use over single-binding
//! straight-line blocks also establishes acyclicity of the dataflow.

use std::collections::BTreeSet;

use pphw_ir::block::{Block, Op, SliceDim, Stmt};
use pphw_ir::expr::Expr;
use pphw_ir::infer::infer_scalar_type_at;
use pphw_ir::path::IrPath;
use pphw_ir::pattern::{GbfBody, Lambda, Pattern};
use pphw_ir::program::Program;
use pphw_ir::size::Size;
use pphw_ir::types::{Sym, Type};

use crate::{DiagCode, Severity, VerifyReport};

/// Checks the whole program, appending findings to `report`.
pub fn check_program(prog: &Program, report: &mut VerifyReport) {
    let mut cx = Cx {
        prog,
        declared: prog.size_vars.iter().collect(),
        report,
    };
    let mut bound: BTreeSet<Sym> = prog.inputs.iter().copied().collect();
    let root = IrPath::root(&prog.name);
    cx.block(&prog.body, &mut bound, &root);
}

struct Cx<'a, 'r> {
    prog: &'a Program,
    declared: BTreeSet<&'a String>,
    report: &'r mut VerifyReport,
}

impl Cx<'_, '_> {
    fn err(&mut self, code: DiagCode, path: &IrPath, message: String) {
        self.report.push(code, Severity::Error, path, message);
    }

    /// `true` if `sym` indexes into the program's symbol table at all.
    fn in_range(&self, sym: Sym) -> bool {
        sym.index() < self.prog.syms.len()
    }

    fn sym_label(&self, sym: Sym) -> String {
        if self.in_range(sym) {
            self.prog.syms.name(sym)
        } else {
            format!("{sym}")
        }
    }

    /// Reports unbound / out-of-range symbols; returns `true` when all
    /// are usable (so dependent checks can run without panicking).
    fn check_syms(&mut self, syms: &[Sym], bound: &BTreeSet<Sym>, path: &IrPath) -> bool {
        let mut ok = true;
        for s in syms {
            if !self.in_range(*s) || !bound.contains(s) {
                ok = false;
                self.err(
                    DiagCode::UnboundSym,
                    path,
                    format!("symbol {} referenced before binding", self.sym_label(*s)),
                );
            }
        }
        ok
    }

    fn check_size(&mut self, size: &Size, path: &IrPath) {
        for v in size.vars() {
            if !self.declared.contains(&v) {
                self.err(
                    DiagCode::UnknownSizeVar,
                    path,
                    format!("size variable `{v}` not declared by the program"),
                );
            }
        }
    }

    /// Type-checks a scalar expression (only when its symbols resolved)
    /// and checks every embedded tensor read for rank agreement.
    fn check_expr(&mut self, e: &Expr, bound: &BTreeSet<Sym>, path: &IrPath) {
        if !self.check_syms(&e.syms(), bound, path) {
            return; // typing an expression over unbound symbols is noise
        }
        let mut reads: Vec<(Sym, usize)> = Vec::new();
        e.visit(&mut |node| {
            if let Expr::Read { tensor, index } = node {
                reads.push((*tensor, index.len()));
            }
        });
        for (tensor, got) in reads {
            let expected = match self.prog.syms.ty(tensor) {
                Type::Tensor { shape, .. } => shape.len(),
                Type::DynVec { .. } => 1,
                // Reading a scalar/dict is a type error, reported below
                // by inference as PPHW006.
                _ => continue,
            };
            if got != expected {
                self.err(
                    DiagCode::RankMismatch,
                    path,
                    format!(
                        "read of {} uses {got} indices but the tensor has rank {expected}",
                        self.sym_label(tensor)
                    ),
                );
            }
        }
        if let Err(e) = infer_scalar_type_at(e, &self.prog.syms, path) {
            self.err(DiagCode::IllTypedExpr, path, e.error.to_string());
        }
    }

    fn check_dims(&mut self, tensor: Sym, dims: &[SliceDim], bound: &BTreeSet<Sym>, path: &IrPath) {
        let rank = self.prog.syms.ty(tensor).rank();
        if dims.len() != rank {
            self.err(
                DiagCode::RankMismatch,
                path,
                format!(
                    "slice/copy of {} has {} dimension specs but the tensor has rank {rank}",
                    self.sym_label(tensor),
                    dims.len()
                ),
            );
        }
        for d in dims {
            match d {
                SliceDim::Point(e) => self.check_expr(e, bound, path),
                SliceDim::Window { start, len } => {
                    self.check_expr(start, bound, path);
                    self.check_size(len, path);
                }
                SliceDim::Full => {}
            }
        }
    }

    fn block(&mut self, block: &Block, bound: &mut BTreeSet<Sym>, path: &IrPath) {
        for (i, stmt) in block.stmts.iter().enumerate() {
            let at = path.stmt(&self.prog.syms, stmt, i);
            self.stmt(stmt, bound, &at);
        }
        self.check_syms(&block.result, bound, path);
    }

    fn stmt(&mut self, stmt: &Stmt, bound: &mut BTreeSet<Sym>, at: &IrPath) {
        match &stmt.op {
            Op::Expr(e) => self.check_expr(e, bound, at),
            Op::VarVec(items) => {
                for item in items {
                    if let Some(g) = &item.guard {
                        self.check_expr(g, bound, at);
                    }
                    self.check_expr(&item.value, bound, at);
                }
            }
            Op::Slice(s) => {
                if self.check_syms(&[s.tensor], bound, at) {
                    self.check_dims(s.tensor, &s.dims, bound, at);
                }
            }
            Op::Copy(c) => {
                if self.check_syms(&[c.tensor], bound, at) {
                    self.check_dims(c.tensor, &c.dims, bound, at);
                }
            }
            Op::Pattern(p) => self.pattern(p, bound, at),
        }
        let expected = match &stmt.op {
            Op::Pattern(p) => p.output_count(),
            _ => 1,
        };
        if stmt.syms.len() != expected {
            self.err(
                DiagCode::OutputArity,
                at,
                format!(
                    "statement binds {} symbols but the operation produces {expected}",
                    stmt.syms.len()
                ),
            );
        }
        for s in &stmt.syms {
            if !self.in_range(*s) || !bound.insert(*s) {
                self.err(
                    DiagCode::Rebound,
                    at,
                    format!("symbol {} bound more than once", self.sym_label(*s)),
                );
            }
        }
    }

    fn lambda_arity(&mut self, l: &Lambda, expected: usize, what: &str, at: &IrPath) {
        if l.params.len() != expected {
            self.err(
                DiagCode::OutputArity,
                at,
                format!(
                    "{what} takes {} parameters but must take {expected}",
                    l.params.len()
                ),
            );
        }
    }

    fn pattern(&mut self, p: &Pattern, bound: &BTreeSet<Sym>, at: &IrPath) {
        for s in p.domain() {
            self.check_size(&s, at);
        }
        match p {
            Pattern::Map(m) => {
                if m.body.params.len() != m.domain.len() {
                    self.err(
                        DiagCode::BadDomain,
                        at,
                        format!(
                            "map over a rank-{} domain binds {} index parameters",
                            m.domain.len(),
                            m.body.params.len()
                        ),
                    );
                }
                let mut inner = bound.clone();
                inner.extend(m.body.params.iter().copied());
                self.block(&m.body.body, &mut inner, &at.child("body"));
            }
            Pattern::MultiFold(mf) => {
                if mf.idx.len() != mf.domain.len() {
                    self.err(
                        DiagCode::BadDomain,
                        at,
                        format!(
                            "multiFold over a rank-{} domain binds {} index parameters",
                            mf.domain.len(),
                            mf.idx.len()
                        ),
                    );
                }
                if mf.updates.len() != mf.accs.len() || mf.combines.len() != mf.accs.len() {
                    self.err(
                        DiagCode::OutputArity,
                        at,
                        format!(
                            "multiFold has {} accumulators, {} updates, {} combines",
                            mf.accs.len(),
                            mf.updates.len(),
                            mf.combines.len()
                        ),
                    );
                }
                for (k, acc) in mf.accs.iter().enumerate() {
                    for s in &acc.shape {
                        self.check_size(s, at);
                    }
                    if acc.init.splat.len() != acc.elem.width() {
                        self.err(
                            DiagCode::UpdateShapeMismatch,
                            at,
                            format!(
                                "accumulator {k} (`{}`) has element width {} but its \
                                 initializer splats {} literals",
                                acc.name,
                                acc.elem.width(),
                                acc.init.splat.len()
                            ),
                        );
                    }
                }
                let mut inner = bound.clone();
                inner.extend(mf.idx.iter().copied());
                self.block(&mf.pre, &mut inner, &at.child("pre"));
                for (k, u) in mf.updates.iter().enumerate() {
                    let upath = at.child(format!("update[{k}]"));
                    let Some(acc) = mf.accs.get(k) else { continue };
                    // An empty extent is the single-element update (the
                    // interpreter expands it to an all-ones region), so
                    // only a non-empty extent must match the rank.
                    if u.loc.len() != acc.shape.len()
                        || (!u.shape.is_empty() && u.shape.len() != acc.shape.len())
                    {
                        self.err(
                            DiagCode::UpdateShapeMismatch,
                            &upath,
                            format!(
                                "update addresses {} location / {} extent dimensions but \
                                 accumulator `{}` has rank {}",
                                u.loc.len(),
                                u.shape.len(),
                                acc.name,
                                acc.shape.len()
                            ),
                        );
                    }
                    for e in &u.loc {
                        self.check_expr(e, &inner, &upath);
                    }
                    for s in &u.shape {
                        self.check_size(s, &upath);
                    }
                    let mut ub = inner.clone();
                    ub.insert(u.acc_param);
                    self.block(&u.body, &mut ub, &upath);
                    if u.body.result.len() != 1 {
                        self.err(
                            DiagCode::OutputArity,
                            &upath,
                            format!("update body yields {} results, not 1", u.body.result.len()),
                        );
                    }
                }
                for (k, c) in mf.combines.iter().enumerate() {
                    let Some(c) = c else { continue };
                    let cpath = at.child(format!("combine[{k}]"));
                    self.lambda_arity(c, 2, "combine", &cpath);
                    let mut cb = bound.clone();
                    cb.extend(c.params.iter().copied());
                    self.block(&c.body, &mut cb, &cpath);
                }
            }
            Pattern::FlatMap(fm) => {
                self.lambda_arity(&fm.body, 1, "flatMap body", at);
                let mut inner = bound.clone();
                inner.extend(fm.body.params.iter().copied());
                self.block(&fm.body.body, &mut inner, &at.child("body"));
            }
            Pattern::GroupByFold(g) => {
                for s in &g.acc.shape {
                    self.check_size(s, at);
                }
                let mut inner = bound.clone();
                inner.insert(g.idx);
                self.block(&g.pre, &mut inner, &at.child("pre"));
                match &g.body {
                    GbfBody::Element { key, update } => {
                        self.check_expr(key, &inner, &at.child("key"));
                        let upath = at.child("update");
                        let mut ub = inner.clone();
                        ub.insert(update.acc_param);
                        self.block(&update.body, &mut ub, &upath);
                    }
                    GbfBody::Merge { dict } => {
                        self.check_syms(&[*dict], &inner, &at.child("merge"));
                    }
                }
                let cpath = at.child("combine");
                self.lambda_arity(&g.combine, 2, "combine", &cpath);
                let mut cb = bound.clone();
                cb.extend(g.combine.params.iter().copied());
                self.block(&g.combine.body, &mut cb, &cpath);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use pphw_ir::builder::ProgramBuilder;
    use pphw_ir::types::DType;

    use super::*;

    fn sum_program() -> Program {
        let mut b = ProgramBuilder::new("sum");
        let d = b.size("d");
        let x = b.input("x", DType::F32, vec![d.clone()]);
        let out = b.fold(
            "sum",
            vec![d],
            vec![],
            pphw_ir::types::ScalarType::Prim(DType::F32),
            pphw_ir::pattern::Init::zeros(),
            |c, i, acc| c.add(c.var(acc), c.read(x, vec![c.var(i[0])])),
            |c, a, b2| c.add(c.var(a), c.var(b2)),
        );
        b.finish(vec![out])
    }

    fn check(prog: &Program) -> VerifyReport {
        let mut r = VerifyReport::new();
        check_program(prog, &mut r);
        r
    }

    #[test]
    fn well_formed_program_is_clean() {
        let r = check(&sum_program());
        assert!(r.is_clean(), "{}", r.to_text());
    }

    #[test]
    fn unbound_result_is_pphw001_with_path() {
        let mut p = sum_program();
        p.body.result = vec![Sym(9999)];
        let r = check(&p);
        assert!(r.has(DiagCode::UnboundSym), "{}", r.to_text());
        assert!(r.errors().any(|d| d.path == "sum"), "{}", r.to_text());
    }

    #[test]
    fn wrong_read_rank_is_pphw007() {
        let mut b = ProgramBuilder::new("bad");
        let m = b.size("m");
        let n = b.size("n");
        let x = b.input("x", DType::F32, vec![m.clone(), n]);
        // Reads the rank-2 tensor with a single index.
        let out = b.map(vec![m], |c, idx| c.read(x, vec![c.var(idx[0])]));
        let p = b.finish(vec![out]);
        let r = check(&p);
        assert!(r.has(DiagCode::RankMismatch), "{}", r.to_text());
    }

    #[test]
    fn multiple_findings_are_all_collected() {
        let mut p = sum_program();
        // Break the result AND rebind an input in one program.
        let extra = p.body.result[0];
        p.body.result = vec![Sym(9999)];
        p.body
            .stmts
            .push(Stmt::new(p.inputs[0], Op::Expr(Expr::var(extra))));
        let r = check(&p);
        assert!(r.has(DiagCode::UnboundSym));
        assert!(r.has(DiagCode::Rebound), "{}", r.to_text());
        assert!(r.error_count() >= 2);
    }

    #[test]
    fn bad_init_width_is_pphw008() {
        let mut p = sum_program();
        for stmt in &mut p.body.stmts {
            if let Op::Pattern(Pattern::MultiFold(mf)) = &mut stmt.op {
                mf.accs[0].init.splat.push(pphw_ir::expr::Lit::I32(0));
            }
        }
        let r = check(&p);
        assert!(r.has(DiagCode::UpdateShapeMismatch), "{}", r.to_text());
    }
}
