//! Static dataflow-balance analyzer (the fourth analyzer family).
//!
//! Works over the producer→consumer channel graph that
//! [`pphw_hw::channel`] derives from `Unit::{reads,writes}` within each
//! metapipeline: SDF-style balance equations over per-stage token rates
//! (`Unit::{elems, lanes, depth}`, `Ctrl::iters`) classify every channel
//! by how many producer tokens its memory can hold at once
//! ([`Channel::slots`]):
//!
//! - **0 slots** (`PPHW041`): the producer cannot complete even one
//!   token — a statically-guaranteed deadlock.
//! - **1 slot** on a forward channel of an iterating metapipeline
//!   (`PPHW042`): the producer must wait for the consumer to drain each
//!   token, so the stages serialize — a stall-guaranteed undersized
//!   channel that defeats the metapipeline.
//! - **FIFO rate imbalance** (`PPHW040`): FIFO reads are destructive,
//!   so a producer and consumer moving different volumes per controller
//!   iteration either accumulate tokens without bound or underflow.
//! - **Starved channel** (`PPHW043`): a FIFO/double buffer read by some
//!   unit but written by none — its consumer waits forever.
//! - **Over-provisioned channel** (`PPHW044`, warning): capacity beyond
//!   the minimal safe depth buys no overlap a double buffer doesn't
//!   already provide; [`infer_capacities`] would reclaim the area.
//!
//! Backward channels (consumer stage precedes the producer) are
//! loop-carried paths whose serialization is inherent in the wavefront
//! schedule, so only their deadlock case is an error.
//!
//! The module also hosts the *sharpness* half of the analysis: a static
//! per-stage busy-cycle predictor ([`predict_stage_loads`]) mirroring
//! the simulator's unit timing, whose argmax is cross-checked against
//! the simulator's busiest stage on every benchmark.

use std::collections::BTreeMap;

use pphw_hw::channel::{channels, Channel};
use pphw_hw::design::{BufId, BufferKind, CtrlKind, Design, Node, Unit, UnitKind};

use crate::{DiagCode, Severity, VerifyConfig, VerifyReport};

/// Checks the design's channel graph, appending findings to `report`.
pub fn check_design(design: &Design, _cfg: &VerifyConfig, report: &mut VerifyReport) {
    check_starved(design, report);
    for ch in channels(design) {
        check_channel(design, &ch, report);
    }
}

fn check_starved(design: &Design, report: &mut VerifyReport) {
    let mut written = vec![false; design.buffers.len()];
    let mut read = vec![false; design.buffers.len()];
    design.root.visit_units(&mut |u| {
        for w in &u.writes {
            if let Some(slot) = written.get_mut(w.0) {
                *slot = true;
            }
        }
        for r in &u.reads {
            if let Some(slot) = read.get_mut(r.0) {
                *slot = true;
            }
        }
    });
    for b in &design.buffers {
        if matches!(b.kind, BufferKind::Fifo | BufferKind::DoubleBuffer)
            && read[b.id.0]
            && !written[b.id.0]
        {
            report.push(
                DiagCode::StarvedChannel,
                Severity::Error,
                format!("{}/{}", design.name, b.name),
                format!(
                    "{} `{}` is read but never written: its consumer waits forever",
                    b.kind, b.name
                ),
            );
        }
    }
}

fn check_channel(design: &Design, ch: &Channel, report: &mut VerifyReport) {
    let path = format!("{}/{}/{}", design.name, ch.ctrl, ch.buf_name);
    if ch.kind == BufferKind::Fifo && ch.producer_words != ch.consumer_words {
        report.push(
            DiagCode::RateMismatch,
            Severity::Error,
            path.clone(),
            format!(
                "FIFO `{}` is rate-inconsistent: stage `{}` enqueues {} words per iteration \
                 but stage `{}` dequeues {}",
                ch.buf_name,
                ch.producer_name,
                ch.producer_words,
                ch.consumer_name,
                ch.consumer_words
            ),
        );
    }
    let slots = ch.slots();
    if slots == 0 {
        report.push(
            DiagCode::ChannelDeadlock,
            Severity::Error,
            path,
            format!(
                "{} `{}` holds {} words but stage `{}` hands stage `{}` {}-word tokens: \
                 no token ever fits, the metapipeline deadlocks",
                ch.kind,
                ch.buf_name,
                ch.capacity_words,
                ch.producer_name,
                ch.consumer_name,
                ch.token_words
            ),
        );
        return;
    }
    if ch.is_backward() {
        return;
    }
    if slots == 1 && ch.iters > 1 {
        report.push(
            DiagCode::ChannelStall,
            Severity::Error,
            path,
            format!(
                "{} `{}` holds a single {}-word token: stage `{}` must stall until stage \
                 `{}` drains each token, serializing the metapipeline",
                ch.kind, ch.buf_name, ch.token_words, ch.producer_name, ch.consumer_name
            ),
        );
    } else if minimal_words(ch) < design.buffer(ch.buf).words {
        report.push(
            DiagCode::OverProvisionedChannel,
            Severity::Warning,
            path,
            format!(
                "{} `{}` has {} words where {} suffice for full overlap; \
                 capacity inference would reclaim the area",
                ch.kind,
                ch.buf_name,
                design.buffer(ch.buf).words,
                minimal_words(ch)
            ),
        );
    }
}

/// The minimal safe `Buffer::words` for a channel's memory: two token
/// slots for forward channels (ping + pong, full overlap), one for
/// backward channels (the wavefront serializes them anyway). A double
/// buffer's physical capacity is `2 x words`, so one word-sized half per
/// token already yields two slots.
fn minimal_words(ch: &Channel) -> u64 {
    match (ch.kind, ch.is_backward()) {
        (BufferKind::DoubleBuffer, false) => ch.token_words,
        (BufferKind::DoubleBuffer, true) => ch.token_words.div_ceil(2),
        (_, false) => ch.token_words.saturating_mul(2),
        (_, true) => ch.token_words,
    }
}

/// One capacity rewrite performed by [`infer_capacities`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityChange {
    /// The rewritten buffer.
    pub buf: BufId,
    /// Its display name.
    pub name: String,
    /// Capacity before, in words.
    pub old_words: u64,
    /// Capacity after, in words.
    pub new_words: u64,
}

/// Rewrites `Buffer::words` of every FIFO/double buffer that carries a
/// channel to the minimal safe depth (two token slots for forward
/// channels, one for backward), flowing straight into the area model.
/// Memories shared by several channels take the largest requirement.
/// Returns the changes actually applied; a design the generator already
/// sized minimally (the normal case) yields an empty vector.
pub fn infer_capacities(design: &mut Design) -> Vec<CapacityChange> {
    let mut required: BTreeMap<usize, u64> = BTreeMap::new();
    for ch in channels(design) {
        let words = minimal_words(&ch);
        let slot = required.entry(ch.buf.0).or_insert(0);
        *slot = (*slot).max(words);
    }
    let mut changes = Vec::new();
    for (idx, words) in required {
        let b = &mut design.buffers[idx];
        if b.words != words {
            changes.push(CapacityChange {
                buf: b.id,
                name: b.name.clone(),
                old_words: b.words,
                new_words: words,
            });
            b.words = words;
        }
    }
    changes
}

/// Scales every channel-carrying FIFO/double buffer to
/// `words * permille / 1000`, rounding down — the capacity knob the
/// design-space explorer sweeps. `1000` is the identity. Returns the
/// applied changes.
pub fn scale_capacities(design: &mut Design, permille: u32) -> Vec<CapacityChange> {
    if permille == 1000 {
        return Vec::new();
    }
    let carried: BTreeMap<usize, ()> = channels(design).iter().map(|c| (c.buf.0, ())).collect();
    let mut changes = Vec::new();
    for (idx, ()) in carried {
        let b = &mut design.buffers[idx];
        let words = b.words.saturating_mul(permille as u64) / 1000;
        if b.words != words {
            changes.push(CapacityChange {
                buf: b.id,
                name: b.name.clone(),
                old_words: b.words,
                new_words: words,
            });
            b.words = words;
        }
    }
    changes
}

/// Whether a capacity scale (in permille of the generated depth) is
/// statically guaranteed to deadlock a generated design, without
/// compiling it. The generator sizes every channel memory at exactly one
/// token per double-buffer half (two slots), so scaling below one half
/// (`permille < 500`) leaves `floor(2 * floor(words * s) / words) = 0`
/// slots on every exact-token channel. The design-space explorer uses
/// this as a prefilter so deadlocked capacity candidates are never
/// compiled.
#[must_use]
pub fn deadlocked_capacity_scale(permille: u32) -> bool {
    permille < 500
}

/// Substrate timing constants for the static busy-cycle predictor —
/// mirrors `pphw_sim::SimConfig` without a dependency on the simulator.
/// The default matches the simulator's default board (150 MHz fabric,
/// 76.8 GB/s ⇒ 512 bytes per cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowTiming {
    /// DRAM channel bandwidth in bytes per fabric cycle.
    pub bytes_per_cycle: f64,
    /// Request-to-first-data latency in cycles.
    pub dram_latency: u64,
    /// DRAM burst size in bytes.
    pub burst_bytes: u64,
    /// Word size in bytes.
    pub word_bytes: u64,
    /// Per-run turnaround for synchronous streams, in cycles.
    pub sync_gap: u64,
}

impl Default for FlowTiming {
    fn default() -> Self {
        FlowTiming {
            bytes_per_cycle: 512.0,
            dram_latency: 60,
            burst_bytes: 384,
            word_bytes: 4,
            sync_gap: 6,
        }
    }
}

/// Predicted steady-state load of one stage (unit name), aggregated over
/// the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLoad {
    /// Unit display name (units sharing a name share a row, matching the
    /// simulator's per-stage statistics).
    pub name: String,
    /// Predicted total busy cycles across all invocations.
    pub busy_cycles: f64,
    /// Total invocations (product of enclosing controller trip counts).
    pub invocations: u64,
}

impl FlowTiming {
    /// Burst-quantized channel transfer time for a stream, and its run
    /// count (mirrors the simulator's DRAM request quantization, minus
    /// contention).
    fn transfer(&self, words: u64, run_words: u64) -> (f64, u64) {
        if words == 0 {
            return (0.0, 0);
        }
        let run = run_words.max(1);
        let runs = words.div_ceil(run);
        let run_bytes = run * self.word_bytes;
        let bursts_per_run = run_bytes.div_ceil(self.burst_bytes);
        let bytes = (runs * bursts_per_run * self.burst_bytes) as f64;
        (bytes / self.bytes_per_cycle, runs)
    }

    /// Channel occupancy of one invocation's read streams: burst
    /// transfer time only, excluding issue latency and inter-run gaps
    /// (latency and gaps overlap across streams; bursts do not). This is
    /// the amount every *later* concurrent stream must queue behind.
    fn read_service(&self, u: &Unit) -> f64 {
        let reads = u.streams.iter().filter(|s| !s.write).count();
        let efficiency: f64 = if reads > 1 { 0.5 } else { 1.0 };
        u.streams
            .iter()
            .filter(|s| !s.write)
            .map(|s| self.transfer(s.words, s.run_words).0 / efficiency.clamp(0.1, 1.0))
            .sum()
    }

    /// Busy cycles of one unit invocation, contention-free: the same
    /// initiation-interval model the simulator applies per invocation
    /// (pipeline fill + one element per lane per cycle, max'd against
    /// stream transfers; synchronous reads serialize a request
    /// round-trip in front).
    fn unit_busy(&self, u: &Unit) -> f64 {
        let lanes = u.kind.lanes().max(1) as u64;
        let is_mem = matches!(
            u.kind,
            UnitKind::TileLoad { .. } | UnitKind::TileStore { .. }
        );
        let compute = if is_mem {
            0.0
        } else {
            u.elems.div_ceil(lanes) as f64
        };
        let depth = f64::from(u.depth);
        let has_sync_reads = u.streams.iter().any(|s| !s.write && !s.prefetch);
        if has_sync_reads {
            let sync_reads = u.streams.iter().filter(|s| !s.write).count();
            let efficiency: f64 = if sync_reads > 1 { 0.5 } else { 1.0 };
            let issue = self.dram_latency as f64;
            let mut mem_end = issue;
            for s in u.streams.iter().filter(|s| !s.write) {
                let (t, runs) = self.transfer(s.words, s.run_words);
                mem_end += t / efficiency.clamp(0.1, 1.0)
                    + (runs.saturating_sub(1) * self.sync_gap) as f64;
            }
            let mut end = mem_end.max(issue + depth + compute);
            for s in u.streams.iter().filter(|s| s.write) {
                let (t, _) = self.transfer(s.words, s.run_words);
                end = end.max(issue + t);
            }
            end
        } else {
            let mut end = depth + compute;
            for s in &u.streams {
                let (t, _) = self.transfer(s.words, s.run_words);
                let done = if s.write {
                    t
                } else {
                    self.dram_latency as f64 + t
                };
                end = end.max(done);
            }
            end
        }
    }
}

fn accumulate(node: &Node, mult: u64, t: &FlowTiming, acc: &mut BTreeMap<String, StageLoad>) {
    match node {
        Node::Unit(u) => {
            let load = acc.entry(u.name.clone()).or_insert_with(|| StageLoad {
                name: u.name.clone(),
                busy_cycles: 0.0,
                invocations: 0,
            });
            load.busy_cycles += mult as f64 * t.unit_busy(u);
            load.invocations += mult;
        }
        Node::Ctrl(c) => {
            // A sequential controller wrapping a single pipelined unit
            // streams its iterations at the initiation interval: the fill
            // depth is paid once, not per iteration (the simulator's
            // `gate < end` model). Everything else invokes each stage
            // `iters` times.
            let iters = c.iters.max(1);
            if c.kind == CtrlKind::Sequential && iters > 1 && c.stages.len() == 1 {
                if let Node::Unit(u) = &c.stages[0] {
                    if !u.streams.iter().any(|s| !s.write && !s.prefetch) {
                        let load = acc.entry(u.name.clone()).or_insert_with(|| StageLoad {
                            name: u.name.clone(),
                            busy_cycles: 0.0,
                            invocations: 0,
                        });
                        let per_iter = t.unit_busy(u) - f64::from(u.depth);
                        load.busy_cycles +=
                            mult as f64 * (iters as f64 * per_iter + f64::from(u.depth));
                        load.invocations += mult * iters;
                        return;
                    }
                }
            }
            // Parallel stages issue their DRAM reads in the same cycle,
            // and the shared channel serves them in stage order: each
            // reading stage queues behind every earlier sibling's
            // transfer (the simulator's shared-channel serialization —
            // busy ladders of `latency + k*transfer`, e.g. tpchq6's four
            // concurrent column loads).
            let mut queue = 0.0;
            for s in &c.stages {
                let m = mult.saturating_mul(iters);
                if c.kind == CtrlKind::Parallel {
                    if let Node::Unit(u) = s {
                        if u.streams.iter().any(|st| !st.write) {
                            let load = acc.entry(u.name.clone()).or_insert_with(|| StageLoad {
                                name: u.name.clone(),
                                busy_cycles: 0.0,
                                invocations: 0,
                            });
                            load.busy_cycles += m as f64 * (t.unit_busy(u) + queue);
                            load.invocations += m;
                            queue += t.read_service(u);
                            continue;
                        }
                    }
                }
                accumulate(s, m, t, acc);
            }
        }
    }
}

/// Predicts every stage's total busy cycles, contention-free, by walking
/// the controller tree and multiplying per-invocation busy time by the
/// product of enclosing trip counts. Rows merge by unit name and sort by
/// name, matching the simulator's per-stage statistics table.
#[must_use]
pub fn predict_stage_loads(design: &Design, t: &FlowTiming) -> Vec<StageLoad> {
    let mut acc = BTreeMap::new();
    accumulate(&design.root, 1, t, &mut acc);
    acc.into_values().collect()
}

/// The statically predicted bottleneck: the stage with the most total
/// busy cycles (first alphabetically on exact ties). `None` for a design
/// with no units.
#[must_use]
pub fn predict_bottleneck(design: &Design, t: &FlowTiming) -> Option<String> {
    predict_stage_loads(design, t)
        .into_iter()
        .reduce(|best, l| {
            if l.busy_cycles > best.busy_cycles {
                l
            } else {
                best
            }
        })
        .map(|l| l.name)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use pphw_hw::design::{
        BufId, Buffer, BufferKind, Ctrl, CtrlKind, Design, DesignStyle, DramStream, Node, Unit,
        UnitKind,
    };

    use super::*;
    use crate::{DiagCode, VerifyConfig, VerifyReport};

    fn buf(id: usize, name: &str, words: u64, kind: BufferKind) -> Buffer {
        Buffer {
            id: BufId(id),
            name: name.into(),
            words,
            word_bytes: 4,
            kind,
            banks: 1,
            readers: 1,
            writers: 1,
        }
    }

    fn unit(name: &str, elems: u64, reads: Vec<BufId>, writes: Vec<BufId>) -> Node {
        Node::Unit(Unit {
            name: name.into(),
            kind: UnitKind::Vector { lanes: 1 },
            elems,
            ops_per_elem: 1,
            depth: 4,
            streams: vec![],
            reads,
            writes,
        })
    }

    fn pipe(buffers: Vec<Buffer>, stages: Vec<Node>, iters: u64) -> Design {
        Design {
            name: "t".into(),
            style: DesignStyle::Metapipelined,
            root: Node::Ctrl(Ctrl {
                name: "top".into(),
                kind: CtrlKind::Metapipeline,
                iters,
                stages,
            }),
            buffers,
        }
    }

    fn check(d: &Design) -> VerifyReport {
        let mut r = VerifyReport::new();
        check_design(d, &VerifyConfig::default(), &mut r);
        r
    }

    fn two_stage(words: u64, kind: BufferKind) -> Design {
        pipe(
            vec![buf(0, "tile", words, kind)],
            vec![
                unit("prod", 64, vec![], vec![BufId(0)]),
                unit("cons", 64, vec![BufId(0)], vec![]),
            ],
            8,
        )
    }

    #[test]
    fn exact_token_double_buffer_is_clean() {
        assert!(check(&two_stage(64, BufferKind::DoubleBuffer)).is_clean());
    }

    #[test]
    fn zero_slot_channel_is_deadlock() {
        let r = check(&two_stage(31, BufferKind::DoubleBuffer));
        assert!(r.has(DiagCode::ChannelDeadlock), "{}", r.to_text());
    }

    #[test]
    fn one_slot_channel_is_stall() {
        // words = token - 1 = 63: capacity 126, one 64-word token fits.
        let r = check(&two_stage(63, BufferKind::DoubleBuffer));
        assert!(r.has(DiagCode::ChannelStall), "{}", r.to_text());
        assert!(!r.has(DiagCode::ChannelDeadlock));
    }

    #[test]
    fn over_provisioned_channel_warns_without_failing() {
        let r = check(&two_stage(128, BufferKind::DoubleBuffer));
        assert!(r.has(DiagCode::OverProvisionedChannel), "{}", r.to_text());
        assert!(r.is_clean(), "warnings must not fail verification");
    }

    #[test]
    fn fifo_rate_mismatch_flagged() {
        let d = pipe(
            vec![buf(0, "q", 256, BufferKind::Fifo)],
            vec![
                unit("prod", 64, vec![], vec![BufId(0)]),
                unit("cons", 32, vec![BufId(0)], vec![]),
            ],
            8,
        );
        let r = check(&d);
        assert!(r.has(DiagCode::RateMismatch), "{}", r.to_text());
    }

    #[test]
    fn starved_channel_flagged() {
        let d = pipe(
            vec![buf(0, "q", 64, BufferKind::Fifo)],
            vec![unit("cons", 64, vec![BufId(0)], vec![])],
            8,
        );
        let r = check(&d);
        assert!(r.has(DiagCode::StarvedChannel), "{}", r.to_text());
    }

    #[test]
    fn backward_single_slot_is_tolerated() {
        // Loop-carried feedback: tail writes what head reads next
        // iteration; one token of capacity is the natural minimum.
        let d = pipe(
            vec![buf(0, "fb", 32, BufferKind::Fifo)],
            vec![
                unit("head", 32, vec![BufId(0)], vec![]),
                unit("tail", 32, vec![], vec![BufId(0)]),
            ],
            8,
        );
        let r = check(&d);
        assert!(r.is_clean(), "{}", r.to_text());
    }

    #[test]
    fn backward_zero_capacity_is_still_deadlock() {
        let d = pipe(
            vec![buf(0, "fb", 16, BufferKind::Fifo)],
            vec![
                unit("head", 32, vec![BufId(0)], vec![]),
                unit("tail", 32, vec![], vec![BufId(0)]),
            ],
            8,
        );
        assert!(check(&d).has(DiagCode::ChannelDeadlock));
    }

    #[test]
    fn infer_capacities_restores_minimal_depth() {
        let mut d = two_stage(128, BufferKind::DoubleBuffer);
        let changes = infer_capacities(&mut d);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old_words, 128);
        assert_eq!(changes[0].new_words, 64);
        assert_eq!(d.buffers[0].words, 64);
        assert!(check(&d).is_clean());
        // Idempotent: a minimally sized design is untouched.
        assert!(infer_capacities(&mut d).is_empty());
    }

    #[test]
    fn infer_capacities_grows_undersized_fifos() {
        let mut d = pipe(
            vec![buf(0, "q", 10, BufferKind::Fifo)],
            vec![
                unit("prod", 64, vec![], vec![BufId(0)]),
                unit("cons", 64, vec![BufId(0)], vec![]),
            ],
            8,
        );
        assert!(check(&d).has(DiagCode::ChannelDeadlock));
        let changes = infer_capacities(&mut d);
        assert_eq!(changes[0].new_words, 128, "two 64-word slots");
        assert!(check(&d).is_clean());
    }

    #[test]
    fn infer_capacities_takes_max_over_shared_channels() {
        // One double buffer read by two consumers with different volumes.
        let mut d = pipe(
            vec![buf(0, "tile", 8, BufferKind::DoubleBuffer)],
            vec![
                unit("prod", 64, vec![], vec![BufId(0)]),
                unit("small", 16, vec![BufId(0)], vec![]),
                unit("big", 64, vec![BufId(0)], vec![]),
            ],
            8,
        );
        infer_capacities(&mut d);
        assert_eq!(d.buffers[0].words, 64, "largest token wins");
    }

    #[test]
    fn scale_capacities_is_identity_at_1000() {
        let mut d = two_stage(64, BufferKind::DoubleBuffer);
        assert!(scale_capacities(&mut d, 1000).is_empty());
        assert_eq!(d.buffers[0].words, 64);
        let changes = scale_capacities(&mut d, 500);
        assert_eq!(changes[0].new_words, 32);
    }

    #[test]
    fn deadlock_scale_threshold_matches_generator_invariant() {
        assert!(deadlocked_capacity_scale(0));
        assert!(deadlocked_capacity_scale(499));
        assert!(!deadlocked_capacity_scale(500));
        assert!(!deadlocked_capacity_scale(1000));
        // Empirically: an exact-token design scaled below one half
        // deadlocks, at or above it does not.
        for permille in [250, 499, 500, 750, 1000] {
            let mut d = two_stage(64, BufferKind::DoubleBuffer);
            scale_capacities(&mut d, permille);
            let deadlocked = check(&d).has(DiagCode::ChannelDeadlock);
            assert_eq!(
                deadlocked,
                deadlocked_capacity_scale(permille),
                "permille {permille}"
            );
        }
    }

    #[test]
    fn predictor_ranks_the_heavier_stage() {
        let mut stages = vec![
            unit("light", 64, vec![], vec![BufId(0)]),
            unit("heavy", 4096, vec![BufId(0)], vec![]),
        ];
        if let Node::Unit(u) = &mut stages[0] {
            u.streams = vec![DramStream {
                words: 64,
                run_words: 64,
                prefetch: true,
                write: false,
            }];
        }
        let d = pipe(
            vec![buf(0, "tile", 64, BufferKind::DoubleBuffer)],
            stages,
            8,
        );
        assert_eq!(
            predict_bottleneck(&d, &FlowTiming::default()).as_deref(),
            Some("heavy")
        );
        let loads = predict_stage_loads(&d, &FlowTiming::default());
        assert_eq!(loads.len(), 2);
        let heavy = loads.iter().find(|l| l.name == "heavy").unwrap();
        assert_eq!(heavy.invocations, 8);
        // 8 iterations x (depth 4 + 4096 elems / 1 lane).
        assert!((heavy.busy_cycles - 8.0 * 4100.0).abs() < 1e-9);
    }

    #[test]
    fn predictor_accounts_for_stream_transfer() {
        // A tile load moving 96k words at 512 B/cyc: the transfer
        // (~750 cycles + latency) dominates its zero compute.
        let load = Node::Unit(Unit {
            name: "load".into(),
            kind: UnitKind::TileLoad { buf: BufId(0) },
            elems: 96_000,
            ops_per_elem: 0,
            depth: 4,
            streams: vec![DramStream {
                words: 96_000,
                run_words: 96_000,
                prefetch: true,
                write: false,
            }],
            reads: vec![],
            writes: vec![BufId(0)],
        });
        let d = pipe(
            vec![buf(0, "tile", 96_000, BufferKind::DoubleBuffer)],
            vec![load, unit("cons", 96_000, vec![BufId(0)], vec![])],
            1,
        );
        let loads = predict_stage_loads(&d, &FlowTiming::default());
        let l = loads.iter().find(|l| l.name == "load").unwrap();
        // 96000 words = 384000 bytes = 1000 bursts; 750 transfer + 60.
        assert!((l.busy_cycles - 810.0).abs() < 1e-6, "{}", l.busy_cycles);
    }
}
