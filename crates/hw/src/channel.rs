//! Producer→consumer channel graph over a design's metapipelines.
//!
//! A *channel* is a FIFO or double buffer written by one metapipeline
//! stage and read by another. The graph is the shared substrate for two
//! consumers: the static dataflow-balance analyzer in `pphw-verify::flow`
//! (rate equations, deadlock/stall detection, minimal capacity
//! inference) and the simulator's capacity model (a channel with a
//! single slot serializes its producer behind its consumer; a channel
//! with zero slots can never make progress).
//!
//! Capacities are expressed in *slots*: how many producer tokens the
//! memory can hold at once. A double buffer of `words` words holds two
//! tokens of `words` words each (ping + pong); a FIFO of `words` words
//! holds `words / token` tokens.

use crate::design::{BufId, Buffer, BufferKind, Ctrl, CtrlKind, Design, Node};

/// A stage-to-stage communication channel inside one metapipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Name of the metapipeline controller owning both endpoints.
    pub ctrl: String,
    /// The memory carrying the tokens.
    pub buf: BufId,
    /// Display name of the memory.
    pub buf_name: String,
    /// Memory template kind (`Fifo` or `DoubleBuffer`).
    pub kind: BufferKind,
    /// Producer stage index within the controller.
    pub producer: usize,
    /// Consumer stage index within the controller.
    pub consumer: usize,
    /// Display name of the producer stage.
    pub producer_name: String,
    /// Display name of the consumer stage.
    pub consumer_name: String,
    /// Raw words written by the producer stage per controller iteration
    /// (accumulator stages rewrite the same footprint many times, so this
    /// can exceed the communicated tile). Always non-zero.
    pub producer_words: u64,
    /// Raw words read by the consumer stage per controller iteration
    /// (compute stages re-read operand tiles, so this can exceed the
    /// communicated tile too). Always non-zero.
    pub consumer_words: u64,
    /// The communicated token grain in words:
    /// `min(producer_words, consumer_words)`. A producer that rewrites
    /// its footprint hands over only the final tile; a consumer that
    /// re-reads still consumes only one tile — the token is bounded by
    /// both, and unlike the raw volumes it is invariant under capacity
    /// mutation, so undersized channels stay detectable.
    pub token_words: u64,
    /// Usable capacity in words: `2 x words` for a double buffer
    /// (ping + pong), `words` for a FIFO.
    pub capacity_words: u64,
    /// Iteration count of the owning controller.
    pub iters: u64,
}

impl Channel {
    /// How many producer tokens fit in the memory at once.
    ///
    /// `0` means the producer can never complete a single token (a
    /// statically-guaranteed deadlock); `1` means the producer must wait
    /// for the consumer to drain each token before starting the next
    /// (full serialization, no overlap); `2` is the classic double
    /// buffer; more than `2` is extra slack.
    #[must_use]
    pub fn slots(&self) -> u64 {
        self.capacity_words / self.token_words.max(1)
    }

    /// Whether the channel runs against stage order (consumer stage
    /// precedes the producer in the pipeline) — a loop-carried path
    /// whose serialization is inherent in the wavefront schedule.
    #[must_use]
    pub fn is_backward(&self) -> bool {
        self.consumer < self.producer
    }
}

/// Words moved per one invocation of `node` to (`writes`) or from
/// (`!writes`) buffer `buf`, summed over everything nested below it.
fn volume(node: &Node, buf: BufId, writes: bool) -> u64 {
    match node {
        Node::Unit(u) => {
            let list = if writes { &u.writes } else { &u.reads };
            if list.contains(&buf) {
                u.elems
            } else {
                0
            }
        }
        Node::Ctrl(c) => {
            let per_iter = c
                .stages
                .iter()
                .map(|s| volume(s, buf, writes))
                .fold(0u64, u64::saturating_add);
            c.iters.max(1).saturating_mul(per_iter)
        }
    }
}

/// The channels of a single metapipeline controller: for every FIFO or
/// double buffer, every (producer stage, consumer stage) pair where one
/// stage writes the memory and a *different* stage reads it.
///
/// Returns an empty vector for non-metapipeline controllers. Order is
/// deterministic: by buffer id, then producer stage, then consumer
/// stage.
#[must_use]
pub fn metapipeline_channels(c: &Ctrl, buffers: &[Buffer]) -> Vec<Channel> {
    if c.kind != CtrlKind::Metapipeline {
        return Vec::new();
    }
    let mut out = Vec::new();
    for b in buffers {
        if !matches!(b.kind, BufferKind::Fifo | BufferKind::DoubleBuffer) {
            continue;
        }
        let capacity_words = match b.kind {
            BufferKind::DoubleBuffer => b.words.saturating_mul(2),
            _ => b.words,
        };
        let written: Vec<u64> = c.stages.iter().map(|s| volume(s, b.id, true)).collect();
        let read: Vec<u64> = c.stages.iter().map(|s| volume(s, b.id, false)).collect();
        for (i, &producer_words) in written.iter().enumerate() {
            if producer_words == 0 {
                continue;
            }
            for (j, &consumer_words) in read.iter().enumerate() {
                if consumer_words == 0 || i == j {
                    continue;
                }
                out.push(Channel {
                    ctrl: c.name.clone(),
                    buf: b.id,
                    buf_name: b.name.clone(),
                    kind: b.kind,
                    producer: i,
                    consumer: j,
                    producer_name: c.stages[i].name().to_string(),
                    consumer_name: c.stages[j].name().to_string(),
                    producer_words,
                    consumer_words,
                    token_words: producer_words.min(consumer_words),
                    capacity_words,
                    iters: c.iters,
                });
            }
        }
    }
    out
}

/// All channels in the design: [`metapipeline_channels`] over every
/// controller in the tree, in tree order.
#[must_use]
pub fn channels(design: &Design) -> Vec<Channel> {
    let mut out = Vec::new();
    design.root.visit_ctrls(&mut |c| {
        out.extend(metapipeline_channels(c, &design.buffers));
    });
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::design::{DesignStyle, Unit, UnitKind};

    fn buffer(id: usize, name: &str, words: u64, kind: BufferKind) -> Buffer {
        Buffer {
            id: BufId(id),
            name: name.into(),
            words,
            word_bytes: 4,
            kind,
            banks: 1,
            readers: 1,
            writers: 1,
        }
    }

    fn unit(name: &str, elems: u64, reads: Vec<BufId>, writes: Vec<BufId>) -> Node {
        Node::Unit(Unit {
            name: name.into(),
            kind: UnitKind::Vector { lanes: 1 },
            elems,
            ops_per_elem: 1,
            depth: 1,
            streams: vec![],
            reads,
            writes,
        })
    }

    fn pipe(buffers: Vec<Buffer>, stages: Vec<Node>, iters: u64) -> Design {
        Design {
            name: "t".into(),
            style: DesignStyle::Metapipelined,
            root: Node::Ctrl(Ctrl {
                name: "top".into(),
                kind: CtrlKind::Metapipeline,
                iters,
                stages,
            }),
            buffers,
        }
    }

    #[test]
    fn double_buffer_counts_two_slots() {
        let d = pipe(
            vec![buffer(0, "tile", 64, BufferKind::DoubleBuffer)],
            vec![
                unit("prod", 64, vec![], vec![BufId(0)]),
                unit("cons", 64, vec![BufId(0)], vec![]),
            ],
            8,
        );
        let chans = channels(&d);
        assert_eq!(chans.len(), 1);
        let ch = &chans[0];
        assert_eq!(ch.token_words, 64);
        assert_eq!(ch.consumer_words, 64);
        assert_eq!(ch.capacity_words, 128);
        assert_eq!(ch.slots(), 2);
        assert!(!ch.is_backward());
        assert_eq!(ch.producer_name, "prod");
        assert_eq!(ch.consumer_name, "cons");
    }

    #[test]
    fn fifo_slots_divide_capacity_by_token() {
        let d = pipe(
            vec![buffer(0, "q", 100, BufferKind::Fifo)],
            vec![
                unit("prod", 40, vec![], vec![BufId(0)]),
                unit("cons", 40, vec![BufId(0)], vec![]),
            ],
            4,
        );
        let chans = channels(&d);
        assert_eq!(chans[0].slots(), 2); // 100 / 40
    }

    #[test]
    fn undersized_fifo_has_zero_slots() {
        let d = pipe(
            vec![buffer(0, "q", 32, BufferKind::Fifo)],
            vec![
                unit("prod", 64, vec![], vec![BufId(0)]),
                unit("cons", 64, vec![BufId(0)], vec![]),
            ],
            4,
        );
        assert_eq!(channels(&d)[0].slots(), 0);
    }

    #[test]
    fn token_is_bounded_by_both_endpoint_volumes() {
        // Accumulator producer: 8192 updates to a 1-word scalar, read
        // once by the next stage. The token is the final scalar.
        let d = pipe(
            vec![buffer(0, "acc", 1, BufferKind::DoubleBuffer)],
            vec![
                unit("reduce", 8192, vec![], vec![BufId(0)]),
                unit("drain", 1, vec![BufId(0)], vec![]),
            ],
            128,
        );
        let chans = channels(&d);
        assert_eq!(chans[0].producer_words, 8192);
        assert_eq!(chans[0].consumer_words, 1);
        assert_eq!(chans[0].token_words, 1);
        assert_eq!(chans[0].slots(), 2);
    }

    #[test]
    fn plain_buffers_and_self_loops_form_no_channel() {
        let d = pipe(
            vec![
                buffer(0, "scratch", 64, BufferKind::Buffer),
                buffer(1, "acc", 64, BufferKind::Fifo),
            ],
            vec![
                unit("rw", 64, vec![BufId(0), BufId(1)], vec![BufId(0), BufId(1)]),
                unit("other", 64, vec![BufId(0)], vec![]),
            ],
            2,
        );
        // Buffer kind excluded entirely; FIFO read+written by the same
        // stage only is a self-loop, not a channel.
        assert!(channels(&d).is_empty());
    }

    #[test]
    fn backward_channel_detected() {
        let d = pipe(
            vec![buffer(0, "fb", 16, BufferKind::Fifo)],
            vec![
                unit("head", 16, vec![BufId(0)], vec![]),
                unit("tail", 16, vec![], vec![BufId(0)]),
            ],
            4,
        );
        let chans = channels(&d);
        assert_eq!(chans.len(), 1);
        assert!(chans[0].is_backward());
        assert_eq!(chans[0].producer, 1);
        assert_eq!(chans[0].consumer, 0);
    }

    #[test]
    fn nested_ctrl_volume_multiplies_iters() {
        let inner = Node::Ctrl(Ctrl {
            name: "inner".into(),
            kind: CtrlKind::Sequential,
            iters: 4,
            stages: vec![unit("w", 16, vec![], vec![BufId(0)])],
        });
        let d = pipe(
            vec![buffer(0, "tile", 64, BufferKind::DoubleBuffer)],
            vec![inner, unit("cons", 64, vec![BufId(0)], vec![])],
            8,
        );
        let chans = channels(&d);
        assert_eq!(chans.len(), 1);
        assert_eq!(chans[0].token_words, 64); // 4 iters x 16 elems
        assert_eq!(chans[0].slots(), 2);
    }

    #[test]
    fn sequential_controllers_have_no_channels() {
        let mut d = pipe(
            vec![buffer(0, "tile", 64, BufferKind::DoubleBuffer)],
            vec![
                unit("prod", 64, vec![], vec![BufId(0)]),
                unit("cons", 64, vec![BufId(0)], vec![]),
            ],
            8,
        );
        if let Node::Ctrl(c) = &mut d.root {
            c.kind = CtrlKind::Sequential;
        }
        assert!(channels(&d).is_empty());
    }
}
