//! Analytic area model.
//!
//! Estimates logic (ALM-equivalents), flip-flops, and on-chip memory
//! (M20K-equivalent blocks) per template instance, mirroring the three
//! resource categories of Figure 7 ("logic", "FF", "mem"). The constants
//! are calibrated to Stratix-V-class primitive costs; absolute numbers are
//! indicative, but the reproduction only relies on *relative* usage
//! between the baseline, tiled, and metapipelined designs, as the paper
//! reports.

use crate::design::{BufferKind, CtrlKind, Design, UnitKind};

/// Area estimate in the three categories Figure 7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Area {
    /// Logic (ALM-equivalents).
    pub logic: f64,
    /// Flip-flops.
    pub ff: f64,
    /// On-chip memory blocks (M20K-equivalents).
    pub mem: f64,
}

impl Area {
    /// Component-wise sum.
    #[allow(clippy::should_implement_trait)] // plain combinator, not arithmetic
    pub fn add(self, other: Area) -> Area {
        Area {
            logic: self.logic + other.logic,
            ff: self.ff + other.ff,
            mem: self.mem + other.mem,
        }
    }

    /// Component-wise ratio against a baseline (the Figure 7 bottom plot).
    pub fn relative_to(self, base: Area) -> Area {
        let safe = |n: f64, d: f64| if d > 0.0 { n / d } else { 1.0 };
        Area {
            logic: safe(self.logic, base.logic),
            ff: safe(self.ff, base.ff),
            mem: safe(self.mem, base.mem),
        }
    }
}

/// M20K block: 20 kbit = 2560 bytes.
const M20K_BYTES: f64 = 2560.0;

/// Cost of one arithmetic lane (average of f32 add/mul on Stratix V:
/// adders in ALMs, multipliers mostly in DSPs with some soft logic).
const LANE_OP_LOGIC: f64 = 320.0;
const LANE_OP_FF: f64 = 480.0;

/// Fixed cost of a load/store unit's command generator plus its address
/// and data stream control (the paper notes these dominate the baseline
/// k-means memory usage).
const MEM_UNIT_LOGIC: f64 = 2600.0;
const MEM_UNIT_FF: f64 = 3800.0;
const MEM_UNIT_MEM_BLOCKS: f64 = 12.0;

/// A synchronous DRAM stream on a compute unit needs deeper decoupling
/// FIFOs than a tile unit (it has no tile buffer to land in); the paper
/// calls these out as dominating the baseline k-means memory usage.
const SYNC_STREAM_MEM_BLOCKS: f64 = 24.0;

const CTRL_LOGIC: f64 = 350.0;
const CTRL_FF: f64 = 500.0;
const META_EXTRA_LOGIC: f64 = 550.0;

/// Estimates the area of one unit.
pub fn unit_area(kind: &UnitKind, ops_per_elem: u32, depth: u32) -> Area {
    match kind {
        UnitKind::TileLoad { .. } | UnitKind::TileStore { .. } => Area {
            logic: MEM_UNIT_LOGIC,
            ff: MEM_UNIT_FF,
            mem: MEM_UNIT_MEM_BLOCKS,
        },
        UnitKind::Vector { lanes } => Area {
            logic: *lanes as f64 * ops_per_elem.max(1) as f64 * LANE_OP_LOGIC,
            ff: *lanes as f64 * ops_per_elem.max(1) as f64 * LANE_OP_FF + depth as f64 * 64.0,
            mem: 0.0,
        },
        UnitKind::ReduceTree { lanes } => {
            // lanes leaf operators plus (lanes-1) combiners in the tree.
            let ops = *lanes as f64 * ops_per_elem.max(1) as f64 + (*lanes as f64 - 1.0).max(0.0);
            Area {
                logic: ops * LANE_OP_LOGIC,
                ff: ops * LANE_OP_FF + depth as f64 * 64.0,
                mem: 0.0,
            }
        }
        UnitKind::ParallelFifo { lanes } => Area {
            logic: *lanes as f64 * ops_per_elem.max(1) as f64 * LANE_OP_LOGIC + 900.0,
            ff: *lanes as f64 * ops_per_elem.max(1) as f64 * LANE_OP_FF + 1200.0,
            mem: 2.0, // the FIFO itself
        },
        UnitKind::Cam => Area {
            logic: 5200.0,
            ff: 6800.0,
            mem: 4.0,
        },
    }
}

/// Estimates the area of one on-chip memory.
pub fn buffer_area(kind: BufferKind, bytes: u64, banks: u32, ports: u32) -> Area {
    // Banking splits the capacity across banks, but each bank costs at
    // least one block.
    let blocks = (bytes as f64 / M20K_BYTES).ceil().max(banks.max(1) as f64);
    let port_logic = ports as f64 * 60.0;
    match kind {
        BufferKind::Buffer | BufferKind::DoubleBuffer | BufferKind::Fifo => Area {
            logic: 80.0 + port_logic,
            ff: 120.0 + ports as f64 * 90.0,
            mem: blocks,
        },
        BufferKind::Cache => Area {
            logic: 1800.0 + port_logic,
            ff: 2400.0,
            mem: blocks + 2.0, // tag array
        },
        BufferKind::Cam => Area {
            logic: 2600.0 + port_logic,
            ff: 3200.0,
            mem: blocks,
        },
    }
}

/// Estimates the full design area.
pub fn design_area(design: &Design) -> Area {
    let mut total = Area::default();
    design.root.visit_units(&mut |u| {
        total = total.add(unit_area(&u.kind, u.ops_per_elem, u.depth));
        // Each DRAM stream attached to a *compute* unit needs its own
        // command generator and address/data stream FIFOs — the structures
        // the paper identifies as dominating the baseline k-means memory
        // usage. Tile load/store units already include this cost.
        if !matches!(
            u.kind,
            UnitKind::TileLoad { .. } | UnitKind::TileStore { .. }
        ) {
            let n = u.streams.len() as f64;
            total = total.add(Area {
                logic: n * MEM_UNIT_LOGIC,
                ff: n * MEM_UNIT_FF,
                mem: n * SYNC_STREAM_MEM_BLOCKS,
            });
        }
    });
    design.root.visit_ctrls(&mut |c| {
        let extra = match c.kind {
            CtrlKind::Metapipeline => META_EXTRA_LOGIC,
            _ => 0.0,
        };
        total = total.add(Area {
            logic: CTRL_LOGIC + extra,
            ff: CTRL_FF,
            mem: 0.0,
        });
    });
    for b in &design.buffers {
        // Double buffers hold two copies of the data.
        let bytes = b.bytes();
        total = total.add(buffer_area(b.kind, bytes, b.banks, b.readers + b.writers));
    }
    let _ = &design.root; // keep borrowck simple for visit closures
    total
}

/// A resource budget over the three area categories, in absolute units
/// (ALM-equivalents / flip-flops / M20K blocks). The design-space explorer
/// rejects candidates whose estimated area exceeds any category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBudget {
    /// Logic capacity (ALM-equivalents).
    pub logic: f64,
    /// Flip-flop capacity.
    pub ff: f64,
    /// On-chip memory capacity (M20K blocks).
    pub mem: f64,
}

impl AreaBudget {
    /// The whole Stratix-V-class device.
    #[must_use]
    pub fn full_device() -> AreaBudget {
        AreaBudget {
            logic: DEVICE_LOGIC,
            ff: DEVICE_FF,
            mem: DEVICE_MEM_BLOCKS,
        }
    }

    /// A uniform fraction of the device in every category.
    #[must_use]
    pub fn device_fraction(frac: f64) -> AreaBudget {
        AreaBudget {
            logic: DEVICE_LOGIC * frac,
            ff: DEVICE_FF * frac,
            mem: DEVICE_MEM_BLOCKS * frac,
        }
    }

    /// Whether an area estimate fits in every category.
    #[must_use]
    pub fn fits(&self, area: Area) -> bool {
        area.logic <= self.logic && area.ff <= self.ff && area.mem <= self.mem
    }
}

impl Default for AreaBudget {
    fn default() -> Self {
        AreaBudget::full_device()
    }
}

/// Scalar area objective for Pareto comparisons: the worst-case device
/// utilization fraction across the three categories (the binding resource).
#[must_use]
pub fn area_objective(area: Area) -> f64 {
    let u = utilization(area);
    u.logic.max(u.ff).max(u.mem)
}

/// Rough device capacity (Stratix V class) used for utilization fractions.
pub const DEVICE_LOGIC: f64 = 262_400.0;
/// Device flip-flop capacity.
pub const DEVICE_FF: f64 = 1_049_600.0;
/// Device M20K block count.
pub const DEVICE_MEM_BLOCKS: f64 = 2_567.0;

/// Utilization fractions of the device.
pub fn utilization(area: Area) -> Area {
    Area {
        logic: area.logic / DEVICE_LOGIC,
        ff: area.ff / DEVICE_FF,
        mem: area.mem / DEVICE_MEM_BLOCKS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_area_scales_with_lanes() {
        let a8 = unit_area(&UnitKind::Vector { lanes: 8 }, 2, 4);
        let a16 = unit_area(&UnitKind::Vector { lanes: 16 }, 2, 4);
        assert!(a16.logic > a8.logic * 1.9);
    }

    #[test]
    fn reduce_tree_larger_than_vector_same_lanes() {
        let v = unit_area(&UnitKind::Vector { lanes: 16 }, 1, 4);
        let r = unit_area(&UnitKind::ReduceTree { lanes: 16 }, 1, 4);
        assert!(r.logic > v.logic, "tree adds combiners");
    }

    #[test]
    fn buffer_blocks_round_up() {
        let a = buffer_area(BufferKind::Buffer, 100, 1, 2);
        assert_eq!(a.mem, 1.0);
        let b = buffer_area(BufferKind::Buffer, 6000, 1, 2);
        assert_eq!(b.mem, 3.0);
    }

    #[test]
    fn banking_costs_at_least_one_block_per_bank() {
        let a = buffer_area(BufferKind::Buffer, 100, 8, 2);
        assert!(a.mem >= 8.0);
    }

    #[test]
    fn relative_to_is_unity_for_self() {
        let a = Area {
            logic: 10.0,
            ff: 20.0,
            mem: 5.0,
        };
        let r = a.relative_to(a);
        assert!((r.logic - 1.0).abs() < 1e-9);
        assert!((r.mem - 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_budget_rejects_any_category_overflow() {
        let b = AreaBudget {
            logic: 100.0,
            ff: 100.0,
            mem: 10.0,
        };
        let fits = Area {
            logic: 99.0,
            ff: 50.0,
            mem: 10.0,
        };
        let too_much_mem = Area {
            logic: 1.0,
            ff: 1.0,
            mem: 11.0,
        };
        assert!(b.fits(fits));
        assert!(!b.fits(too_much_mem));
        assert!(AreaBudget::full_device().fits(fits));
    }

    #[test]
    fn area_objective_is_binding_resource_fraction() {
        let a = Area {
            logic: DEVICE_LOGIC / 2.0,
            ff: DEVICE_FF / 4.0,
            mem: DEVICE_MEM_BLOCKS / 8.0,
        };
        assert!((area_objective(a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_costs_more_logic_than_buffer() {
        let c = buffer_area(BufferKind::Cache, 4096, 1, 2);
        let b = buffer_area(BufferKind::Buffer, 4096, 1, 2);
        assert!(c.logic > b.logic);
        assert!(c.mem > b.mem);
    }
}
