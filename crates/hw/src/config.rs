//! Hardware generation configuration.

/// Knobs for hardware generation.
///
/// The paper keeps the innermost parallelism factor constant between the
/// baseline and optimized designs (§6.1); `inner_par` is that factor.
#[derive(Debug, Clone)]
pub struct HwConfig {
    /// Generate metapipeline controllers for outer patterns with multiple
    /// stages (`false` composes stages sequentially).
    pub metapipeline: bool,
    /// Innermost parallelism factor (vector lanes / reduction tree leaves).
    pub inner_par: u32,
    /// Remove redundant accumulators when a tiled `MultiFold`'s outer
    /// update is an elementwise merge (the paper's redundant-accumulation
    /// elimination, §5).
    pub elide_accumulators: bool,
    /// Capacity (entries) of CAMs inferred for `GroupByFold`.
    pub cam_entries: u64,
    /// Capacity in bytes of caches inferred for non-affine main-memory
    /// accesses.
    pub cache_bytes: u64,
    /// On-chip memory budget in bytes for accumulator placement.
    pub on_chip_budget_bytes: u64,
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig {
            metapipeline: true,
            inner_par: 64,
            elide_accumulators: true,
            cam_entries: 1024,
            cache_bytes: 64 * 1024,
            on_chip_budget_bytes: 6 * 1024 * 1024,
        }
    }
}

impl HwConfig {
    /// Configuration for the HLS-style baseline: no metapipelining (the
    /// baseline is generated from the *untiled* program, so there are no
    /// tile buffers either).
    pub fn baseline() -> Self {
        HwConfig {
            metapipeline: false,
            ..Self::default()
        }
    }

    /// Sets the innermost parallelism factor.
    pub fn with_inner_par(mut self, lanes: u32) -> Self {
        self.inner_par = lanes;
        self
    }

    /// Enables or disables metapipelining.
    pub fn with_metapipeline(mut self, on: bool) -> Self {
        self.metapipeline = on;
        self
    }
}
