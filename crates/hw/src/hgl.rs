//! MaxJ-flavoured HGL emission.
//!
//! The paper's toolchain translates the IR into MaxJ, a Java-based
//! hardware generation language, rather than into HDL directly. This
//! module renders a [`Design`] as a MaxJ-style kernel class: each template
//! instance becomes a parameterized object instantiation, and controllers
//! become nested scheduling scopes. The output is human-readable pseudo-
//! MaxJ — faithful in structure (what gets instantiated, with which
//! parameters, in which scope) though not compilable without the
//! proprietary MaxCompiler.

use std::fmt::Write as _;

use crate::design::{BufferKind, Ctrl, Design, Node, Unit, UnitKind};

/// Renders the design as MaxJ-style kernel source.
pub fn emit_maxj(design: &Design) -> String {
    let mut out = String::new();
    let class = camel(&design.name);
    let _ = writeln!(out, "// Auto-generated from PPL ({})", design.style);
    let _ = writeln!(out, "class {class}Kernel extends Kernel {{");
    let _ = writeln!(out, "  {class}Kernel(KernelParameters params) {{");
    let _ = writeln!(out, "    super(params);");
    let _ = writeln!(out);
    let _ = writeln!(out, "    // --- on-chip memories ---");
    for b in &design.buffers {
        let decl = match b.kind {
            BufferKind::Buffer => format!(
                "Memory<DFEVar> {} = mem.alloc(dfeFloat(8, 24), {});",
                ident(&b.name),
                b.words
            ),
            BufferKind::DoubleBuffer => format!(
                "DoubleBuffer<DFEVar> {} = mem.doubleBuffer(dfeFloat(8, 24), {});",
                ident(&b.name),
                b.words
            ),
            BufferKind::Cache => format!(
                "Cache<DFEVar> {} = mem.cache(dfeFloat(8, 24), {} /* words */);",
                ident(&b.name),
                b.words
            ),
            BufferKind::Cam => format!(
                "CAM<DFEVar, DFEVar> {} = mem.cam({} /* entries */);",
                ident(&b.name),
                b.words
            ),
            BufferKind::Fifo => format!(
                "Fifo<DFEVar> {} = mem.fifo(dfeFloat(8, 24), {});",
                ident(&b.name),
                b.words
            ),
        };
        let banks = if b.banks > 1 {
            format!(" // {} banks", b.banks)
        } else {
            String::new()
        };
        let _ = writeln!(out, "    {decl}{banks}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "    // --- controller/unit hierarchy ---");
    emit_node(&design.root, design, 2, &mut out);
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

fn emit_node(node: &Node, design: &Design, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Ctrl(c) => emit_ctrl(c, design, indent, out),
        Node::Unit(u) => {
            let line = unit_decl(u, design);
            let _ = writeln!(out, "{pad}{line}");
        }
    }
}

fn emit_ctrl(c: &Ctrl, design: &Design, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let ctor = match c.kind {
        crate::design::CtrlKind::Sequential => "control.sequential",
        crate::design::CtrlKind::Metapipeline => "control.metapipeline",
        crate::design::CtrlKind::Parallel => "control.parallel",
    };
    let _ = writeln!(
        out,
        "{pad}{}({} /* iters */, () -> {{ // {}",
        ctor,
        c.iters,
        ident(&c.name)
    );
    for s in &c.stages {
        emit_node(s, design, indent + 1, out);
    }
    let _ = writeln!(out, "{pad}}});");
}

fn unit_decl(u: &Unit, design: &Design) -> String {
    let name = ident(&u.name);
    match &u.kind {
        UnitKind::TileLoad { buf } => format!(
            "io.tileLoad(\"{name}\", {}, {} /* words */, {} /* burst run */);",
            ident(&design.buffer(*buf).name),
            u.elems,
            u.streams.first().map(|s| s.run_words).unwrap_or(1)
        ),
        UnitKind::TileStore { buf } => format!(
            "io.tileStore(\"{name}\", {}, {} /* words */);",
            ident(&design.buffer(*buf).name),
            u.elems
        ),
        UnitKind::Vector { lanes } => format!(
            "compute.vector(\"{name}\", {lanes} /* lanes */, {} /* elems */, {} /* ops */);",
            u.elems, u.ops_per_elem
        ),
        UnitKind::ReduceTree { lanes } => format!(
            "compute.reduceTree(\"{name}\", {lanes} /* leaves */, {} /* elems */, {} /* ops */);",
            u.elems, u.ops_per_elem
        ),
        UnitKind::ParallelFifo { lanes } => format!(
            "compute.parallelFifo(\"{name}\", {lanes} /* lanes */, {} /* elems */);",
            u.elems
        ),
        UnitKind::Cam => format!("compute.camUpdate(\"{name}\", {} /* elems */);", u.elems),
    }
}

fn camel(s: &str) -> String {
    let mut out = String::new();
    let mut upper = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            if upper {
                out.extend(c.to_uppercase());
                upper = false;
            } else {
                out.push(c);
            }
        } else {
            upper = true;
        }
    }
    out
}

fn ident(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{BufId, Buffer, CtrlKind, DesignStyle, DramStream};

    fn tiny() -> Design {
        Design {
            name: "sum rows".into(),
            style: DesignStyle::Metapipelined,
            root: Node::Ctrl(Ctrl {
                name: "outer".into(),
                kind: CtrlKind::Metapipeline,
                iters: 4,
                stages: vec![
                    Node::Unit(Unit {
                        name: "load".into(),
                        kind: UnitKind::TileLoad { buf: BufId(0) },
                        elems: 64,
                        ops_per_elem: 0,
                        depth: 4,
                        streams: vec![DramStream {
                            words: 64,
                            run_words: 64,
                            prefetch: true,
                            write: false,
                        }],
                        reads: vec![],
                        writes: vec![BufId(0)],
                    }),
                    Node::Unit(Unit {
                        name: "reduce".into(),
                        kind: UnitKind::ReduceTree { lanes: 8 },
                        elems: 64,
                        ops_per_elem: 1,
                        depth: 10,
                        streams: vec![],
                        reads: vec![BufId(0)],
                        writes: vec![],
                    }),
                ],
            }),
            buffers: vec![Buffer {
                id: BufId(0),
                name: "xTile".into(),
                words: 64,
                word_bytes: 4,
                kind: BufferKind::DoubleBuffer,
                banks: 8,
                readers: 1,
                writers: 1,
            }],
        }
    }

    #[test]
    fn emits_kernel_class() {
        let text = emit_maxj(&tiny());
        assert!(
            text.contains("class SumRowsKernel extends Kernel"),
            "{text}"
        );
        assert!(text.contains("mem.doubleBuffer"), "{text}");
        assert!(text.contains("control.metapipeline(4"), "{text}");
        assert!(text.contains("io.tileLoad"), "{text}");
        assert!(text.contains("compute.reduceTree"), "{text}");
    }

    #[test]
    fn identifiers_sanitized() {
        assert_eq!(ident("a b-c"), "a_b_c");
        assert_eq!(camel("sum rows"), "SumRows");
    }
}
