//! # pphw-hw — hardware generation
//!
//! Maps tiled PPL programs to template-based hardware designs (§5 of the
//! paper): memory allocation (buffers, double buffers, caches, CAMs,
//! FIFOs), template selection (vector units, reduction trees, parallel
//! FIFOs, tile memory units), and metapipeline analysis. Includes the
//! analytic area model behind Figure 7's resource plots, a MaxJ-flavoured
//! HGL emitter, and the HLS-style baseline generator.

pub mod area;
pub mod channel;
pub mod config;
pub mod design;
pub mod gen;
pub mod hgl;

pub use area::{area_objective, design_area, utilization, Area, AreaBudget};
pub use channel::Channel;
pub use config::HwConfig;
pub use design::{Design, DesignStyle, StageInterner};
pub use gen::{generate, HwError};
