//! Hardware generation: tiled PPL programs to template-based designs (§5).
//!
//! The generator walks the (tiled) IR and maps each construct to the
//! templates of Table 4:
//!
//! * explicit tile copies → tile-load units feeding on-chip buffers;
//! * outer patterns containing multiple inner patterns → metapipeline
//!   controllers whose stages come from a topological pass over the body;
//! * inner patterns over scalars → vector units, reduction trees,
//!   parallel FIFOs and CAMs;
//! * statically-sized arrays → buffers; non-affine main-memory accesses →
//!   caches; dynamically-sized outputs → FIFOs;
//! * `MultiFold` accumulators whose outer update is an elementwise merge
//!   are *elided*: the inner pattern accumulates directly into the outer
//!   buffer (the paper's redundant-accumulator removal);
//! * every buffer written in one metapipeline stage and read in a later
//!   one is promoted to a double buffer (WAR hazard avoidance).
//!
//! Generating from an *untiled* program with [`HwConfig::baseline`] yields
//! the paper's comparison baseline: sequential composition, inner
//! parallelism only, and synchronous burst-granularity DRAM streams.

use std::collections::{BTreeMap, BTreeSet};

use pphw_ir::access::{classify_index, IndexClass};
use pphw_ir::block::{Block, Op, SliceDim, Stmt};
use pphw_ir::expr::Expr;
use pphw_ir::pattern::Pattern;
use pphw_ir::program::Program;
use pphw_ir::size::{Size, SizeEnv};
use pphw_ir::types::{Sym, Type};

use crate::config::HwConfig;
use crate::design::{
    BufId, Buffer, BufferKind, Ctrl, CtrlKind, Design, DesignStyle, DramStream, Node, Unit,
    UnitKind,
};

/// Errors produced during hardware generation.
#[derive(Debug, Clone, PartialEq)]
pub enum HwError {
    /// A size expression could not be evaluated with the provided sizes.
    Size(String),
    /// The program has an unsupported structure.
    Unsupported(String),
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::Size(m) => write!(f, "size evaluation failed: {m}"),
            HwError::Unsupported(m) => write!(f, "unsupported program structure: {m}"),
        }
    }
}

impl std::error::Error for HwError {}

/// The last element of a pattern's domain/parameter list, or a typed
/// error for adversarial IR with an empty list.
fn last_or_unsupported<'x, T>(xs: &'x [T], what: &'static str) -> Result<&'x T, HwError> {
    xs.last()
        .ok_or_else(|| HwError::Unsupported(format!("pattern has empty {what}")))
}

/// Generates a hardware design from a program with concrete sizes.
///
/// # Errors
///
/// Returns [`HwError`] if sizes cannot be evaluated or the program uses an
/// unsupported structure.
pub fn generate(
    prog: &Program,
    env: &SizeEnv,
    cfg: &HwConfig,
    style: DesignStyle,
) -> Result<Design, HwError> {
    let mut g = Gen {
        prog,
        env,
        cfg,
        baseline: style == DesignStyle::Baseline,
        buffers: Vec::new(),
        buf_of: BTreeMap::new(),
        slice_base: BTreeMap::new(),
        dram: prog.inputs.iter().copied().collect(),
        cache_of: BTreeMap::new(),
        scope: BTreeSet::new(),
        vector_dim: None,
        vector_dim_applied: false,
    };
    // Program outputs live in DRAM.
    for s in prog.outputs() {
        g.dram.insert(*s);
    }

    let mut stages = Vec::new();
    for stmt in &prog.body.stmts {
        if let Some(node) = g.gen_stmt(stmt, true)? {
            stages.push(node);
        }
    }
    let root = match (stages.pop(), stages.is_empty()) {
        (Some(only), true) => only,
        (popped, _) => {
            stages.extend(popped);
            Node::Ctrl(Ctrl {
                name: format!("{}_top", prog.name),
                kind: CtrlKind::Sequential,
                iters: 1,
                stages,
            })
        }
    };
    let mut design = Design {
        name: prog.name.clone(),
        style,
        root,
        buffers: g.buffers,
    };
    promote_double_buffers(&mut design);
    bank_buffers(&mut design);
    Ok(design)
}

struct Gen<'a> {
    prog: &'a Program,
    env: &'a SizeEnv,
    cfg: &'a HwConfig,
    /// Generating the HLS-style baseline (from an untiled program).
    baseline: bool,
    buffers: Vec<Buffer>,
    /// IR symbol → on-chip buffer.
    buf_of: BTreeMap<Sym, BufId>,
    /// Slice view → base tensor symbol.
    slice_base: BTreeMap<Sym, Sym>,
    /// DRAM-resident symbols.
    dram: BTreeSet<Sym>,
    /// DRAM tensor → cache buffer (for non-affine accesses).
    cache_of: BTreeMap<Sym, BufId>,
    /// Pattern indices of all enclosing controllers (used to distinguish
    /// outer-indexed affine accesses from data-dependent ones).
    scope: BTreeSet<Sym>,
    /// Baseline map vectorization: the innermost map index and the lane
    /// factor. Leaf DRAM reads varying with this index are scaled to cover
    /// one vector of instances.
    vector_dim: Option<(Sym, u64)>,
    /// Whether the most recent map controller vectorized its instances.
    vector_dim_applied: bool,
}

impl<'a> Gen<'a> {
    fn eval(&self, s: &Size) -> Result<u64, HwError> {
        s.eval(self.env)
            .map(|v| v as u64)
            .map_err(|e| HwError::Size(format!("{s}: {e}")))
    }

    fn shape_elems(&self, shape: &[Size]) -> Result<u64, HwError> {
        let mut n = 1u64;
        for s in shape {
            n = n.saturating_mul(self.eval(s)?);
        }
        Ok(n)
    }

    fn alloc_buffer(&mut self, name: &str, words: u64, word_bytes: u32, kind: BufferKind) -> BufId {
        let id = BufId(self.buffers.len());
        self.buffers.push(Buffer {
            id,
            name: name.to_string(),
            words,
            word_bytes,
            kind,
            banks: 1,
            readers: 0,
            writers: 0,
        });
        id
    }

    fn base_of(&self, sym: Sym) -> Sym {
        let mut s = sym;
        while let Some(&b) = self.slice_base.get(&s) {
            s = b;
        }
        s
    }

    /// Generates a node for one top-level or nested statement. Returns
    /// `None` for statements that don't become stages (scalar glue,
    /// slices).
    fn gen_stmt(&mut self, stmt: &Stmt, top: bool) -> Result<Option<Node>, HwError> {
        match &stmt.op {
            Op::Expr(_) | Op::VarVec(_) => Ok(None),
            Op::Slice(s) => {
                self.slice_base.insert(stmt.sym(), s.tensor);
                Ok(None)
            }
            Op::Copy(c) => {
                let tile = stmt.sym();
                let (words, word_bytes) = self.tensor_words(tile)?;
                let buf =
                    self.alloc_buffer(&self.name_of(tile), words, word_bytes, BufferKind::Buffer);
                self.buf_of.insert(tile, buf);
                let base = self.base_of(c.tensor);
                let run = self.copy_run(base, &c.dims)?;
                Ok(Some(Node::Unit(Unit {
                    name: format!("load_{}", self.name_of(tile)),
                    kind: UnitKind::TileLoad { buf },
                    elems: words,
                    ops_per_elem: 0,
                    depth: 4,
                    streams: vec![DramStream {
                        words,
                        run_words: run,
                        prefetch: true,
                        write: false,
                    }],
                    reads: vec![],
                    writes: vec![buf],
                })))
            }
            Op::Pattern(p) => self.gen_pattern(stmt, p, top).map(Some),
        }
    }

    fn name_of(&self, sym: Sym) -> String {
        self.prog.syms.info(sym).name.clone()
    }

    fn tensor_words(&self, sym: Sym) -> Result<(u64, u32), HwError> {
        match self.prog.ty(sym) {
            Type::Tensor { elem, shape } => Ok((
                self.shape_elems(shape)?.saturating_mul(elem.width() as u64),
                4,
            )),
            Type::Scalar(s) => Ok((s.width() as u64, 4)),
            Type::DynVec { .. } => Ok((self.cfg.cam_entries, 4)),
            Type::Dict { .. } => Ok((self.cfg.cam_entries, 8)),
        }
    }

    /// Contiguous run length (in words) for a tile copy: the product of
    /// trailing fully-covered dimensions times the last windowed extent.
    fn copy_run(&self, tensor: Sym, dims: &[SliceDim]) -> Result<u64, HwError> {
        let shape = self.prog.ty(tensor).shape().to_vec();
        let mut run = 1u64;
        for (d, full) in dims.iter().zip(&shape).rev() {
            match d {
                SliceDim::Full => {
                    run = run.saturating_mul(self.eval(full)?);
                }
                SliceDim::Window { len, .. } => {
                    let l = self.eval(len)?;
                    let covers = self.eval(full)? == l;
                    run = run.saturating_mul(l);
                    if !covers {
                        break;
                    }
                }
                SliceDim::Point(_) => break,
            }
        }
        Ok(run.max(1))
    }

    fn gen_pattern(&mut self, stmt: &Stmt, p: &Pattern, top: bool) -> Result<Node, HwError> {
        if is_leaf(p) {
            return self.gen_leaf(stmt, p, top);
        }
        self.gen_outer(stmt, p, top)
    }

    // ---- outer (controller) patterns ----

    fn gen_outer(&mut self, stmt: &Stmt, p: &Pattern, top: bool) -> Result<Node, HwError> {
        let iters = {
            let mut n = 1u64;
            for d in p.domain() {
                n = n.saturating_mul(self.eval(&d)?);
            }
            n
        };
        let name = self.name_of(stmt.syms[0]);
        let scope_added: Vec<Sym> = p
            .param_syms()
            .into_iter()
            .filter(|s| self.scope.insert(*s))
            .collect();

        let mut stages: Vec<Node> = Vec::new();
        match p {
            Pattern::MultiFold(mf) => {
                // Allocate accumulator storage for outputs first.
                let acc_bufs = self.alloc_acc_buffers(stmt, mf, top)?;
                // Detect elided merges so inner partials alias the output
                // buffers.
                if self.cfg.elide_accumulators {
                    self.alias_elided_partials(mf, &acc_bufs);
                }
                for s in &mf.pre.stmts {
                    if let Some(node) = self.gen_stmt(s, false)? {
                        stages.push(node);
                    }
                }
                // Update stages.
                for (q, u) in mf.updates.iter().enumerate() {
                    let acc_sym = stmt.syms[q];
                    let region_words = if u.shape.is_empty() {
                        self.acc_elem_width(mf, q)
                    } else {
                        self.shape_elems(&u.shape)?
                            .saturating_mul(self.acc_elem_width(mf, q))
                    };
                    match self.classify_update(mf, q) {
                        UpdateKind::WriteThrough(partial) => {
                            if self.dram.contains(&acc_sym) {
                                // Store region to DRAM per iteration.
                                let src = self.buf_of.get(&partial).copied();
                                let run = region_store_run(self, mf, q)?;
                                stages.push(Node::Unit(Unit {
                                    name: format!("store_{name}"),
                                    kind: UnitKind::TileStore {
                                        buf: src.unwrap_or(BufId(0)),
                                    },
                                    elems: region_words,
                                    ops_per_elem: 0,
                                    depth: 4,
                                    streams: vec![DramStream {
                                        words: region_words,
                                        run_words: run,
                                        prefetch: true,
                                        write: true,
                                    }],
                                    reads: src.into_iter().collect(),
                                    writes: vec![],
                                }));
                            }
                            // On-chip write-through: no stage needed.
                        }
                        UpdateKind::Elided => {
                            // Inner pattern accumulates in place; if the
                            // accumulator is a DRAM output, store it after
                            // the loop (handled by the final store pass).
                        }
                        UpdateKind::Compute => {
                            // The update body carries real nested compute
                            // (e.g. the interchanged map-of-fold of Table 3):
                            // its pattern statements become stages. The
                            // accumulator parameter and the body result both
                            // alias the accumulator buffer so reads/writes
                            // are attributed correctly.
                            let acc_buf = acc_bufs.get(q).copied().flatten();
                            if let Some(buf) = acc_buf {
                                self.buf_of.insert(u.acc_param, buf);
                                for r in &u.body.result {
                                    self.buf_of.insert(*r, buf);
                                }
                            }
                            for s in &u.body.stmts {
                                if let Some(node) = self.gen_stmt(s, false)? {
                                    stages.push(node);
                                }
                            }
                        }
                        UpdateKind::Merge => {
                            let ops = block_flops(&u.body);
                            let acc_buf = acc_bufs.get(q).copied().flatten();
                            let mut reads: Vec<BufId> = acc_buf.into_iter().collect();
                            reads.extend(self.block_buffer_reads(&u.body));
                            stages.push(Node::Unit(Unit {
                                name: format!("acc_{name}"),
                                kind: UnitKind::Vector {
                                    lanes: self.cfg.inner_par.min(region_words.max(1) as u32),
                                },
                                elems: region_words,
                                ops_per_elem: ops.max(1),
                                depth: 6,
                                streams: vec![],
                                reads,
                                writes: acc_buf.into_iter().collect(),
                            }));
                        }
                    }
                }
                // DRAM-resident accumulator updated with elision/merge
                // still needs a final store after the loop: emitted by the
                // caller via `final_store`.
            }
            Pattern::Map(m) => {
                let saved_vector = self.vector_dim.take();
                if self.baseline {
                    let vsym = *last_or_unsupported(&m.body.params, "map params")?;
                    // Vectorize map instances only when it coalesces
                    // memory: some DRAM read's last dimension is indexed
                    // directly by the innermost map index (a gather that
                    // becomes a lane-contiguous read, e.g. gemm's columns
                    // of y). Otherwise the baseline simply pipelines
                    // instances.
                    if self.subtree_has_gather(&m.body.body, vsym) {
                        let innermost = self.eval(last_or_unsupported(&m.domain, "map domain")?)?;
                        let factor = (self.cfg.inner_par as u64).min(innermost).max(1);
                        self.vector_dim = Some((vsym, factor));
                        self.vector_dim_applied = true;
                    } else {
                        self.vector_dim_applied = false;
                    }
                }
                for s in &m.body.body.stmts {
                    if let Some(node) = self.gen_stmt(s, false)? {
                        stages.push(node);
                    }
                }
                self.vector_dim = saved_vector;
                // Epilogue scalar work (selects etc. after nested folds).
                let ops = exprs_flops(&m.body.body);
                if ops > 0 {
                    stages.push(Node::Unit(Unit {
                        name: format!("{name}_epi"),
                        kind: UnitKind::Vector { lanes: 1 },
                        elems: 1,
                        ops_per_elem: ops,
                        depth: 4,
                        streams: vec![],
                        reads: self.block_buffer_reads(&m.body.body),
                        writes: self
                            .buf_of
                            .get(&stmt.syms[0])
                            .copied()
                            .into_iter()
                            .collect(),
                    }));
                }
                // Allocate output storage; DRAM outputs are streamed out
                // one element per iteration (row-major).
                self.ensure_value_buffer(stmt.syms[0], top)?;
                if self.dram.contains(&stmt.syms[0]) {
                    let run = self.eval(last_or_unsupported(&m.domain, "map domain")?)?;
                    stages.push(Node::Unit(Unit {
                        name: format!("store_{name}"),
                        kind: UnitKind::TileStore { buf: BufId(0) },
                        elems: 1,
                        ops_per_elem: 0,
                        depth: 4,
                        streams: vec![DramStream {
                            words: 1,
                            run_words: run.max(1),
                            prefetch: true,
                            write: true,
                        }],
                        reads: vec![],
                        writes: vec![],
                    }));
                }
            }
            Pattern::FlatMap(fm) => {
                self.ensure_value_buffer(stmt.syms[0], top)?;
                for s in &fm.body.body.stmts {
                    if let Some(node) = self.gen_stmt(s, false)? {
                        stages.push(node);
                    }
                }
            }
            Pattern::GroupByFold(g) => {
                self.ensure_value_buffer(stmt.syms[0], top)?;
                for s in &g.pre.stmts {
                    if let Some(node) = self.gen_stmt(s, false)? {
                        stages.push(node);
                    }
                }
                // Merge stage into the CAM.
                let cam = self.buf_of.get(&stmt.syms[0]).copied();
                stages.push(Node::Unit(Unit {
                    name: format!("{name}_merge"),
                    kind: UnitKind::Cam,
                    elems: self.cfg.cam_entries.min(64),
                    ops_per_elem: block_flops(&g.combine.body).max(1),
                    depth: 6,
                    streams: vec![],
                    reads: self.block_buffer_reads(&g.pre),
                    writes: cam.into_iter().collect(),
                }));
            }
        }

        for s in &scope_added {
            self.scope.remove(s);
        }
        // Baseline vectorization of map nests: the HLS-style design
        // vectorizes the innermost map dimension across `inner_par` lanes,
        // so `inner_par` consecutive instances execute as one invocation;
        // reads whose location varies with that dimension become
        // lane-contiguous gathers.
        let mut iters = iters;
        if self.baseline && matches!(p, Pattern::Map(_)) && self.vector_dim_applied {
            // The compute stage is the single non-store unit (map nests
            // over DRAM outputs also carry a per-iteration store stage).
            let compute_stages: Vec<usize> = stages
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    !matches!(n, Node::Unit(u) if matches!(u.kind, UnitKind::TileStore { .. }))
                })
                .map(|(i, _)| i)
                .collect();
            if compute_stages.len() == 1 {
                let domain = p.domain();
                let innermost = self.eval(last_or_unsupported(&domain, "domain")?)?;
                let factor = (self.cfg.inner_par as u64).min(innermost).max(1);
                iters = iters.div_ceil(factor);
                // Per-iteration stores now cover `factor` elements.
                for n in stages.iter_mut() {
                    if let Node::Unit(su) = n {
                        if matches!(su.kind, UnitKind::TileStore { .. }) {
                            for st in &mut su.streams {
                                st.words = st.words.saturating_mul(factor);
                                st.run_words = st.run_words.max(factor);
                            }
                        }
                    }
                }
            }
        }
        if stages.is_empty() {
            return Err(HwError::Unsupported(format!(
                "outer pattern `{name}` produced no stages"
            )));
        }

        // Independent adjacent tile loads start simultaneously under a
        // Parallel controller (Table 4).
        let stages = group_parallel_loads(stages);
        // Controllers whose stages involve no DRAM tile transfers are pure
        // compute loops; their iterations pipeline in every design (the
        // "pipelined parallelism within patterns" all levels share).
        // Overlapping *memory* stages with compute is the metapipelining
        // optimization proper.
        let has_mem_stage = stages.iter().any(|n| {
            let mut found = false;
            n.visit_units(&mut |u| {
                if !u.streams.is_empty() {
                    found = true;
                }
            });
            found
        });
        let kind = if stages.len() > 1 && (self.cfg.metapipeline || !has_mem_stage) {
            CtrlKind::Metapipeline
        } else {
            CtrlKind::Sequential
        };
        Ok(Node::Ctrl(Ctrl {
            name,
            kind,
            iters,
            stages,
        }))
    }

    /// Allocates accumulator buffers for a MultiFold statement's outputs.
    /// Top-level program outputs stay in DRAM (stores are emitted per
    /// region); everything else gets an on-chip buffer.
    fn alloc_acc_buffers(
        &mut self,
        stmt: &Stmt,
        mf: &pphw_ir::pattern::MultiFoldPat,
        _top: bool,
    ) -> Result<Vec<Option<BufId>>, HwError> {
        let mut out = Vec::with_capacity(stmt.syms.len());
        for (q, sym) in stmt.syms.iter().enumerate() {
            let is_output = self.prog.outputs().contains(sym)
                && matches!(self.prog.ty(*sym), Type::Tensor { .. });
            let (words, wb) = self.tensor_words(*sym)?;
            let bytes = words as u128 * wb as u128;
            let fits = bytes <= self.cfg.on_chip_budget_bytes as u128;
            let _ = self.update_is_write_through(mf, q);
            if is_output {
                // Streamed to DRAM region by region.
                self.dram.insert(*sym);
                out.push(None);
            } else if fits {
                let buf = self.alloc_buffer(&self.name_of(*sym), words, wb, BufferKind::Buffer);
                self.buf_of.insert(*sym, buf);
                self.dram.remove(sym);
                out.push(Some(buf));
            } else {
                self.dram.insert(*sym);
                out.push(None);
            }
        }
        Ok(out)
    }

    fn acc_elem_width(&self, mf: &pphw_ir::pattern::MultiFoldPat, q: usize) -> u64 {
        mf.accs[q].elem.width() as u64
    }

    fn update_is_write_through(&self, mf: &pphw_ir::pattern::MultiFoldPat, q: usize) -> bool {
        matches!(self.classify_update(mf, q), UpdateKind::WriteThrough(_))
    }

    fn classify_update(&self, mf: &pphw_ir::pattern::MultiFoldPat, q: usize) -> UpdateKind {
        let u = &mf.updates[q];
        if u.body.stmts.is_empty() && u.body.result.len() == 1 {
            return UpdateKind::WriteThrough(u.body.result[0]);
        }
        // A *pure* elementwise merge map over the FULL accumulator (as
        // produced by strip mining): single Map whose body is scalar
        // expressions only. These are elided (the paper's redundant-
        // accumulator removal). Partial-region updates (e.g. k-means'
        // per-point scatter at a data-dependent location) are real work,
        // and maps with nested structure are compute stages.
        if u.body.stmts.len() == 1 {
            if let Op::Pattern(Pattern::Map(m)) = &u.body.stmts[0].op {
                let pure = m
                    .body
                    .body
                    .stmts
                    .iter()
                    .all(|s| matches!(s.op, Op::Expr(_)));
                if pure
                    && self.cfg.elide_accumulators
                    && u.is_full(&mf.accs[q])
                    && is_identity_merge(m, u.acc_param)
                {
                    return UpdateKind::Elided;
                }
                if !pure {
                    return UpdateKind::Compute;
                }
            }
        }
        if u.body
            .stmts
            .iter()
            .any(|s| matches!(s.op, Op::Pattern(_) | Op::Copy(_)))
        {
            return UpdateKind::Compute;
        }
        UpdateKind::Merge
    }

    /// For elided merges, the inner partial accumulator uses the same
    /// buffer as the outer accumulator.
    fn alias_elided_partials(
        &mut self,
        mf: &pphw_ir::pattern::MultiFoldPat,
        acc_bufs: &[Option<BufId>],
    ) {
        // Partial symbols are the outputs of the inner pattern statement in
        // the pre-block; updates reference them through their bodies.
        let partial_syms: Vec<Vec<Sym>> = mf
            .pre
            .stmts
            .iter()
            .filter(|s| matches!(s.op, Op::Pattern(_)))
            .map(|s| s.syms.clone())
            .collect();
        for (q, u) in mf.updates.iter().enumerate() {
            if !matches!(self.classify_update(mf, q), UpdateKind::Elided) {
                continue;
            }
            let Some(buf) = acc_bufs.get(q).copied().flatten() else {
                continue;
            };
            let frees = u.body.free_syms();
            for syms in &partial_syms {
                for s in syms {
                    if frees.contains(s) {
                        self.buf_of.insert(*s, buf);
                    }
                }
            }
        }
    }

    /// Ensures a value produced by a pattern has on-chip storage (or is
    /// marked DRAM if it is a program output / too large).
    fn ensure_value_buffer(&mut self, sym: Sym, _top: bool) -> Result<(), HwError> {
        if self.buf_of.contains_key(&sym) {
            return Ok(());
        }
        let is_output = self.prog.outputs().contains(&sym);
        let (words, wb) = self.tensor_words(sym)?;
        let kind = match self.prog.ty(sym) {
            Type::DynVec { .. } => BufferKind::Fifo,
            Type::Dict { .. } => BufferKind::Cam,
            _ => BufferKind::Buffer,
        };
        let bytes = words as u128 * wb as u128;
        // Tensor program outputs are streamed to DRAM; only scalar outputs
        // accumulate on chip (their final store is negligible).
        if is_output && matches!(self.prog.ty(sym), Type::Tensor { .. } | Type::DynVec { .. }) {
            self.dram.insert(sym);
            return Ok(());
        }
        if bytes <= self.cfg.on_chip_budget_bytes as u128 {
            let buf = self.alloc_buffer(&self.name_of(sym), words, wb, kind);
            self.buf_of.insert(sym, buf);
            self.dram.remove(&sym);
        } else {
            self.dram.insert(sym);
        }
        Ok(())
    }

    // ---- leaf (compute unit) patterns ----

    fn gen_leaf(&mut self, stmt: &Stmt, p: &Pattern, top: bool) -> Result<Node, HwError> {
        let name = self.name_of(stmt.syms[0]);
        let domain = p.domain();
        let mut elems = 1u64;
        for d in &domain {
            elems = elems.saturating_mul(self.eval(d)?);
        }
        let lanes = (self.cfg.inner_par as u64).min(elems.max(1)).max(1) as u32;

        let ops: u32 = p
            .child_blocks()
            .iter()
            .map(|b| block_flops(b))
            .sum::<u32>()
            .max(1);

        let kind = match p {
            Pattern::Map(_) => UnitKind::Vector { lanes },
            Pattern::MultiFold(_) => UnitKind::ReduceTree { lanes },
            Pattern::FlatMap(_) => UnitKind::ParallelFifo { lanes },
            Pattern::GroupByFold(_) => UnitKind::Cam,
        };
        let depth = 8 + (lanes as f64).log2().ceil() as u32 + ops.min(24);

        // Output storage.
        for s in &stmt.syms {
            self.ensure_value_buffer(*s, top)?;
        }
        let writes: Vec<BufId> = stmt
            .syms
            .iter()
            .filter_map(|s| self.buf_of.get(s).copied())
            .collect();

        // Buffer reads and DRAM streams from the pattern's blocks.
        let mut reads = Vec::new();
        let mut streams = Vec::new();
        self.collect_leaf_traffic(p, elems, &mut reads, &mut streams)?;
        reads.sort();
        reads.dedup();

        // DRAM stores for write-once leaf outputs that are DRAM-resident.
        for s in &stmt.syms {
            if self.dram.contains(s) && self.prog.outputs().contains(s) {
                let (words, _) = self.tensor_words(*s)?;
                streams.push(DramStream {
                    words,
                    run_words: words.max(1),
                    prefetch: true,
                    write: true,
                });
            }
        }

        Ok(Node::Unit(Unit {
            name,
            kind,
            elems,
            ops_per_elem: ops,
            depth,
            streams,
            reads,
            writes,
        }))
    }

    /// Collects buffer reads and DRAM streams for a leaf pattern.
    fn collect_leaf_traffic(
        &mut self,
        p: &Pattern,
        elems: u64,
        reads: &mut Vec<BufId>,
        streams: &mut Vec<DramStream>,
    ) -> Result<(), HwError> {
        let idx: BTreeSet<Sym> = p.param_syms().into_iter().collect();
        let inner = self.innermost_of(p)?;
        let mut dram_words: BTreeMap<Sym, (u64, u64)> = BTreeMap::new(); // sym -> (words, run)
        for b in p.child_blocks() {
            self.leaf_block_traffic(b, elems, &idx, inner, reads, &mut dram_words)?;
        }
        let _ = &self.scope;
        for (sym, (words, run)) in dram_words {
            // Non-affine or direct DRAM access: infer a cache when the
            // access is data-dependent, otherwise stream directly.
            let ty_bytes = self.tensor_words(sym)?.0 * 4;
            let cached = self.cache_of.get(&sym).copied();
            if let Some(cache) = cached {
                reads.push(cache);
                let miss_words = if ty_bytes <= self.cfg.cache_bytes {
                    self.tensor_words(sym)?.0 // cold misses only
                } else {
                    words
                };
                streams.push(DramStream {
                    words: miss_words,
                    run_words: run,
                    prefetch: false,
                    write: false,
                });
            } else {
                streams.push(DramStream {
                    words,
                    run_words: run,
                    prefetch: false,
                    write: false,
                });
            }
        }
        Ok(())
    }

    /// The innermost iteration variable of a pattern and its extent.
    fn innermost_of(&self, p: &Pattern) -> Result<Option<(Sym, u64)>, HwError> {
        let (sym, size) = match p {
            Pattern::Map(m) => (
                *last_or_unsupported(&m.body.params, "map params")?,
                last_or_unsupported(&m.domain, "map domain")?.clone(),
            ),
            Pattern::MultiFold(mf) => (
                *last_or_unsupported(&mf.idx, "fold indices")?,
                last_or_unsupported(&mf.domain, "fold domain")?.clone(),
            ),
            Pattern::FlatMap(fm) => (fm.body.params[0], fm.domain.clone()),
            Pattern::GroupByFold(g) => (g.idx, g.domain.clone()),
        };
        Ok(Some((sym, self.eval(&size)?)))
    }

    #[allow(clippy::too_many_arguments)]
    fn leaf_block_traffic(
        &mut self,
        block: &Block,
        mult: u64,
        idx: &BTreeSet<Sym>,
        inner: Option<(Sym, u64)>,
        reads: &mut Vec<BufId>,
        dram: &mut BTreeMap<Sym, (u64, u64)>,
    ) -> Result<(), HwError> {
        for stmt in &block.stmts {
            match &stmt.op {
                Op::Slice(s) => {
                    self.slice_base.insert(stmt.sym(), s.tensor);
                }
                Op::Copy(_) => {
                    return Err(HwError::Unsupported("tile copy inside leaf pattern".into()))
                }
                Op::Expr(_) | Op::VarVec(_) => {}
                Op::Pattern(q) => {
                    let mut inner_mult = mult;
                    for d in q.domain() {
                        inner_mult = inner_mult.saturating_mul(self.eval(&d)?);
                    }
                    let mut idx2 = idx.clone();
                    idx2.extend(q.param_syms());
                    let inner2 = self.innermost_of(q)?;
                    for b in q.child_blocks() {
                        self.leaf_block_traffic(b, inner_mult, &idx2, inner2, reads, dram)?;
                    }
                }
            }
        }
        // Expression-level reads. Contiguity (`run`) is judged against the
        // leaf's *own* indices (what varies within one invocation); cache
        // inference is judged against the full enclosing scope (anything
        // affine in an enclosing controller index is predictable, anything
        // else is data-dependent).
        let full_scope: BTreeSet<Sym> = self.scope.union(idx).copied().collect();
        let mut handle_read = |this: &mut Self, tensor: Sym, index: &[Expr]| {
            let base = this.base_of(tensor);
            if let Some(&buf) = this.buf_of.get(&base).or_else(|| this.buf_of.get(&tensor)) {
                reads.push(buf);
                return;
            }
            if this.dram.contains(&base) {
                let is_local_unit = |e: &Expr| -> bool {
                    match classify_index(e, idx) {
                        IndexClass::Affine { terms, .. } => {
                            terms.len() == 1 && terms.values().next() == Some(&Size::Const(1))
                        }
                        _ => false,
                    }
                };
                let last_local = index.last().map(&is_local_unit).unwrap_or(false);
                let affine_in_scope = index.iter().all(|e| {
                    !matches!(classify_index(e, &full_scope), IndexClass::NonAffine)
                        && !matches!(
                            classify_index(e, &full_scope),
                            IndexClass::AffineDynamic { .. }
                        )
                });
                // Contiguity extends across every trailing dimension swept
                // by a unit-coefficient local index (e.g. the whole k×d
                // centroid array streams as one run when both j and p are
                // pattern indices).
                let mut run = 1u64;
                if last_local {
                    // Align trailing dimensions (the index may come from a
                    // view with fewer dimensions than the base tensor).
                    let shape = this.prog.ty(base).shape().to_vec();
                    for (e, extent) in index.iter().rev().zip(shape.iter().rev()) {
                        if !is_local_unit(e) {
                            break;
                        }
                        let ext = extent.eval(this.env).unwrap_or(1) as u64;
                        run = run.saturating_mul(ext);
                    }
                }
                let mut run = run.max(1);
                // Baseline vectorization: a read varying with the
                // vectorized map index covers `factor` lane instances per
                // invocation; lane-contiguous gathers raise the run.
                let mut scale = 1u64;
                if let Some((vsym, factor)) = this.vector_dim {
                    let varies = index.iter().any(|e| e.syms().contains(&vsym));
                    if varies {
                        scale = factor;
                        let last_is_vdim = match index.last() {
                            Some(Expr::Var(s)) => *s == vsym,
                            _ => false,
                        };
                        if last_is_vdim && run == 1 {
                            run = factor;
                        }
                    }
                }
                if !affine_in_scope && !this.cache_of.contains_key(&base) {
                    let cache = this.alloc_buffer(
                        &format!("{}_cache", this.name_of(base)),
                        this.cfg.cache_bytes / 4,
                        4,
                        BufferKind::Cache,
                    );
                    this.cache_of.insert(base, cache);
                }
                // A value invariant to the innermost iteration is held in a
                // register across it (e.g. outerprod's x(i) across j), so
                // it is fetched once per outer step, not per element.
                let mut eff_mult = mult;
                if let Some((isym, iext)) = inner {
                    let mentions = index.iter().any(|e| e.syms().contains(&isym));
                    if !mentions && iext > 1 {
                        eff_mult = (eff_mult / iext).max(1);
                    }
                }
                let e = dram.entry(base).or_insert((0, run));
                e.0 = e.0.saturating_add(eff_mult.saturating_mul(scale));
                e.1 = e.1.max(run);
            }
        };
        // Walk expressions in the block (only this block's own statements;
        // nested patterns were handled above).
        for stmt in &block.stmts {
            let mut exprs: Vec<&Expr> = Vec::new();
            match &stmt.op {
                Op::Expr(e) => exprs.push(e),
                Op::VarVec(items) => {
                    for it in items {
                        if let Some(g) = &it.guard {
                            exprs.push(g);
                        }
                        exprs.push(&it.value);
                    }
                }
                _ => {}
            }
            for e in exprs {
                e.visit(&mut |sub| {
                    if let Expr::Read { tensor, index } = sub {
                        handle_read(self, *tensor, index);
                    }
                });
            }
        }
        Ok(())
    }

    /// Returns true if some DRAM tensor read in the subtree has its last
    /// dimension indexed directly by `vsym`.
    fn subtree_has_gather(&self, block: &Block, vsym: Sym) -> bool {
        let mut found = false;
        fn walk(g: &Gen<'_>, b: &Block, vsym: Sym, found: &mut bool) {
            for stmt in &b.stmts {
                match &stmt.op {
                    Op::Expr(e) => check_expr(g, e, vsym, found),
                    Op::VarVec(items) => {
                        for it in items {
                            if let Some(gd) = &it.guard {
                                check_expr(g, gd, vsym, found);
                            }
                            check_expr(g, &it.value, vsym, found);
                        }
                    }
                    Op::Pattern(p) => {
                        for cb in p.child_blocks() {
                            walk(g, cb, vsym, found);
                        }
                    }
                    _ => {}
                }
            }
        }
        fn check_expr(g: &Gen<'_>, e: &Expr, vsym: Sym, found: &mut bool) {
            e.visit(&mut |sub| {
                if let Expr::Read { tensor, index } = sub {
                    let base = g.base_of(*tensor);
                    if g.dram.contains(&base)
                        && matches!(index.last(), Some(Expr::Var(s)) if *s == vsym)
                    {
                        *found = true;
                    }
                }
            });
        }
        walk(self, block, vsym, &mut found);
        found
    }

    /// Buffers read by expressions in a block (transitively through slices).
    fn block_buffer_reads(&self, block: &Block) -> Vec<BufId> {
        let mut out = Vec::new();
        let visit_block = |b: &Block, out: &mut Vec<BufId>| {
            for s in b.free_syms() {
                let base = self.base_of(s);
                if let Some(&buf) = self.buf_of.get(&base) {
                    out.push(buf);
                }
            }
        };
        visit_block(block, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

enum UpdateKind {
    /// The update body is exactly the inner partial: region write-through.
    WriteThrough(Sym),
    /// Elementwise merge map, elided by accumulator aliasing.
    Elided,
    /// The update body carries nested patterns: real compute stages.
    Compute,
    /// Scalar merge kept as a small compute stage.
    Merge,
}

/// Recognizes the merge map strip mining produces: every tensor read is
/// indexed by exactly the map's parameters in order (an elementwise zip of
/// the accumulator with one partial). Anything else — different index
/// orders (outer products), extra operands — is real compute and must not
/// be elided.
fn is_identity_merge(m: &pphw_ir::pattern::MapPat, acc_param: Sym) -> bool {
    let params = &m.body.params;
    let mut tensors = BTreeSet::new();
    let mut identity = true;
    for stmt in &m.body.body.stmts {
        if let Op::Expr(e) = &stmt.op {
            e.visit(&mut |sub| {
                if let Expr::Read { tensor, index } = sub {
                    tensors.insert(*tensor);
                    let id = index.len() == params.len()
                        && index
                            .iter()
                            .zip(params)
                            .all(|(e, p)| matches!(e, Expr::Var(s) if s == p));
                    if !id {
                        identity = false;
                    }
                }
            });
        }
    }
    identity && tensors.contains(&acc_param) && tensors.len() == 2
}

/// Wraps runs of two or more consecutive tile-load stages in a Parallel
/// controller so independent tile fetches start together.
fn group_parallel_loads(stages: Vec<Node>) -> Vec<Node> {
    let is_load =
        |n: &Node| matches!(n, Node::Unit(u) if matches!(u.kind, UnitKind::TileLoad { .. }));
    let mut out: Vec<Node> = Vec::with_capacity(stages.len());
    let mut run: Vec<Node> = Vec::new();
    for stage in stages {
        if is_load(&stage) {
            run.push(stage);
            continue;
        }
        flush_load_run(&mut run, &mut out);
        out.push(stage);
    }
    flush_load_run(&mut run, &mut out);
    out
}

fn flush_load_run(run: &mut Vec<Node>, out: &mut Vec<Node>) {
    match (run.len(), run.pop()) {
        (_, None) => {}
        (1, Some(only)) => out.push(only),
        (_, Some(popped)) => {
            run.push(popped);
            out.push(Node::Ctrl(Ctrl {
                name: "loads".into(),
                kind: CtrlKind::Parallel,
                iters: 1,
                stages: std::mem::take(run),
            }));
        }
    }
}

fn is_leaf(p: &Pattern) -> bool {
    fn block_has_structure(b: &Block) -> bool {
        b.stmts
            .iter()
            .any(|s| matches!(&s.op, Op::Pattern(_) | Op::Copy(_)))
    }
    !p.child_blocks().iter().any(|b| block_has_structure(b))
}

/// Counts floating-point operations in a block's own expressions.
fn exprs_flops(block: &Block) -> u32 {
    let mut n = 0;
    for stmt in &block.stmts {
        match &stmt.op {
            Op::Expr(e) => n += e.flop_count(),
            Op::VarVec(items) => {
                for it in items {
                    if let Some(g) = &it.guard {
                        n += g.flop_count();
                    }
                    n += it.value.flop_count();
                }
            }
            _ => {}
        }
    }
    n
}

/// Counts flops recursively through nested blocks.
fn block_flops(block: &Block) -> u32 {
    let mut n = exprs_flops(block);
    for stmt in &block.stmts {
        if let Op::Pattern(p) = &stmt.op {
            for b in p.child_blocks() {
                n += block_flops(b);
            }
        }
    }
    n
}

/// Contiguous run for a region store: trailing fully-covered dims.
fn region_store_run(
    g: &Gen<'_>,
    mf: &pphw_ir::pattern::MultiFoldPat,
    q: usize,
) -> Result<u64, HwError> {
    let acc = &mf.accs[q];
    let u = &mf.updates[q];
    if u.shape.is_empty() {
        return Ok(1);
    }
    let mut run = 1u64;
    for (r, full) in u.shape.iter().zip(&acc.shape).rev() {
        let rl = g.eval(r)?;
        run = run.saturating_mul(rl);
        if g.eval(full)? != rl {
            break;
        }
    }
    Ok(run.max(1))
}

/// Promotes buffers written in one metapipeline stage and read in a later
/// stage to double buffers.
fn promote_double_buffers(design: &mut Design) {
    let mut promote: BTreeSet<BufId> = BTreeSet::new();
    collect_promotions(&design.root, &mut promote);
    for b in &mut design.buffers {
        if promote.contains(&b.id) && matches!(b.kind, BufferKind::Buffer | BufferKind::Fifo) {
            b.kind = BufferKind::DoubleBuffer;
        }
    }
}

fn stage_rw(node: &Node) -> (BTreeSet<BufId>, BTreeSet<BufId>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    node.visit_units(&mut |u| {
        reads.extend(u.reads.iter().copied());
        writes.extend(u.writes.iter().copied());
    });
    (reads, writes)
}

fn collect_promotions(node: &Node, promote: &mut BTreeSet<BufId>) {
    if let Node::Ctrl(c) = node {
        if c.kind == CtrlKind::Metapipeline {
            let rw: Vec<_> = c.stages.iter().map(stage_rw).collect();
            for i in 0..rw.len() {
                for rw_j in rw.iter().skip(i + 1) {
                    for w in &rw[i].1 {
                        if rw_j.0.contains(w) {
                            promote.insert(*w);
                        }
                    }
                }
            }
        }
        for s in &c.stages {
            collect_promotions(s, promote);
        }
    }
}

/// Sets buffer banking to match the widest vector access.
fn bank_buffers(design: &mut Design) {
    let mut banks: BTreeMap<BufId, u32> = BTreeMap::new();
    let mut ports: BTreeMap<BufId, (u32, u32)> = BTreeMap::new();
    design.root.visit_units(&mut |u| {
        let lanes = u.kind.lanes();
        for r in &u.reads {
            let e = banks.entry(*r).or_insert(1);
            *e = (*e).max(lanes);
            ports.entry(*r).or_insert((0, 0)).0 += 1;
        }
        for w in &u.writes {
            let e = banks.entry(*w).or_insert(1);
            *e = (*e).max(lanes);
            ports.entry(*w).or_insert((0, 0)).1 += 1;
        }
    });
    for b in &mut design.buffers {
        if let Some(&k) = banks.get(&b.id) {
            // One bank serves an 8-word-wide port; lanes beyond that need
            // additional banks.
            b.banks = k.div_ceil(8).min(b.words.max(1) as u32).max(1);
        }
        if let Some(&(r, w)) = ports.get(&b.id) {
            b.readers = r.max(1);
            b.writers = w.max(1);
        } else {
            b.readers = 1;
            b.writers = 1;
        }
    }
}
