//! Hardware design representation.
//!
//! A design is a tree of *controllers* (sequential, parallel, metapipeline
//! — the controller templates of Table 4) whose leaves are *units*
//! (pipelined execution and tile-memory templates), plus a table of
//! on-chip *memories* (buffers, double buffers, caches, CAMs, FIFOs).
//! Iteration counts and buffer capacities are concrete (the compiler
//! evaluates symbolic sizes when it builds the design), which keeps the
//! simulator and area model simple.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an on-chip memory in [`Design::buffers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub usize);

/// On-chip memory template kinds (memory rows of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// Plain scratchpad buffer (statically sized array).
    Buffer,
    /// Double buffer coupling two metapipeline stages.
    DoubleBuffer,
    /// Tagged cache for non-affine accesses to main memory.
    Cache,
    /// Fully-associative key-value store (GroupByFold buckets).
    Cam,
    /// FIFO buffering dynamically-sized ordered output (FlatMap).
    Fifo,
}

impl fmt::Display for BufferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferKind::Buffer => write!(f, "buffer"),
            BufferKind::DoubleBuffer => write!(f, "double-buffer"),
            BufferKind::Cache => write!(f, "cache"),
            BufferKind::Cam => write!(f, "CAM"),
            BufferKind::Fifo => write!(f, "FIFO"),
        }
    }
}

/// An on-chip memory instance.
#[derive(Debug, Clone)]
pub struct Buffer {
    /// Identifier (index into [`Design::buffers`]).
    pub id: BufId,
    /// Display name (derived from the IR symbol).
    pub name: String,
    /// Capacity in words.
    pub words: u64,
    /// Bytes per word.
    pub word_bytes: u32,
    /// Template kind.
    pub kind: BufferKind,
    /// Number of independent banks (for parallel lane access).
    pub banks: u32,
    /// Reader count (ports).
    pub readers: u32,
    /// Writer count (ports).
    pub writers: u32,
}

impl Buffer {
    /// Total capacity in bytes (doubled for double buffers).
    pub fn bytes(&self) -> u64 {
        let base = self.words * self.word_bytes as u64;
        match self.kind {
            BufferKind::DoubleBuffer => base * 2,
            _ => base,
        }
    }
}

/// A DRAM access stream issued by a unit.
#[derive(Debug, Clone)]
pub struct DramStream {
    /// Total words moved per controller iteration of the owning unit.
    pub words: u64,
    /// Contiguous run length in words (how many sequential words each
    /// address burst covers before jumping).
    pub run_words: u64,
    /// `true` when runs are pipelined (tile load units amortize the DRAM
    /// latency once per stream); `false` models the baseline's
    /// burst-at-a-time behavior where every run pays full latency.
    pub prefetch: bool,
    /// `true` for stores.
    pub write: bool,
}

/// Pipelined execution / tile-memory unit kinds (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub enum UnitKind {
    /// Memory command generator fetching a tile from DRAM into a buffer.
    TileLoad {
        /// Destination buffer.
        buf: BufId,
    },
    /// Memory command generator writing a buffer back to DRAM.
    TileStore {
        /// Source buffer.
        buf: BufId,
    },
    /// SIMD element-wise pipeline (Map over scalars).
    Vector {
        /// Parallel lanes.
        lanes: u32,
    },
    /// Parallel reduction of an associative operation (MultiFold over
    /// scalars).
    ReduceTree {
        /// Leaf lanes of the tree.
        lanes: u32,
    },
    /// Buffered ordered output of dynamic size (FlatMap over scalars).
    ParallelFifo {
        /// Parallel lanes feeding the FIFO.
        lanes: u32,
    },
    /// Fully-associative key-value update pipeline (GroupByFold).
    Cam,
}

impl UnitKind {
    /// Template name as listed in Table 4.
    pub fn template_name(&self) -> &'static str {
        match self {
            UnitKind::TileLoad { .. } => "Tile memory (load)",
            UnitKind::TileStore { .. } => "Tile memory (store)",
            UnitKind::Vector { .. } => "Vector",
            UnitKind::ReduceTree { .. } => "Reduction tree",
            UnitKind::ParallelFifo { .. } => "Parallel FIFO",
            UnitKind::Cam => "CAM",
        }
    }

    /// Lane count (1 for memory units and CAMs).
    pub fn lanes(&self) -> u32 {
        match self {
            UnitKind::Vector { lanes }
            | UnitKind::ReduceTree { lanes }
            | UnitKind::ParallelFifo { lanes } => *lanes,
            _ => 1,
        }
    }
}

/// A leaf hardware unit.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Display name.
    pub name: String,
    /// Template kind.
    pub kind: UnitKind,
    /// Elements processed per invocation (inner iteration count).
    pub elems: u64,
    /// Arithmetic operations per element (pipeline width of work).
    pub ops_per_elem: u32,
    /// Pipeline depth in cycles (fill/drain overhead per invocation).
    pub depth: u32,
    /// DRAM streams issued per invocation.
    pub streams: Vec<DramStream>,
    /// On-chip memories read.
    pub reads: Vec<BufId>,
    /// On-chip memories written.
    pub writes: Vec<BufId>,
}

/// Controller kinds (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlKind {
    /// Stages run back-to-back each iteration.
    Sequential,
    /// Stages overlap across iterations through double buffers.
    Metapipeline,
    /// All members start together; done when all finish.
    Parallel,
}

impl fmt::Display for CtrlKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlKind::Sequential => write!(f, "Sequential"),
            CtrlKind::Metapipeline => write!(f, "Metapipeline"),
            CtrlKind::Parallel => write!(f, "Parallel"),
        }
    }
}

/// A controller coordinating child nodes.
#[derive(Debug, Clone)]
pub struct Ctrl {
    /// Display name.
    pub name: String,
    /// Coordination style.
    pub kind: CtrlKind,
    /// Iteration count (1 for one-shot sequences).
    pub iters: u64,
    /// Child stages in execution order.
    pub stages: Vec<Node>,
}

/// A node of the design tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A controller with children.
    Ctrl(Ctrl),
    /// A leaf unit.
    Unit(Unit),
}

impl Node {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            Node::Ctrl(c) => &c.name,
            Node::Unit(u) => &u.name,
        }
    }

    /// Visits every unit in the subtree.
    pub fn visit_units<'a>(&'a self, f: &mut impl FnMut(&'a Unit)) {
        match self {
            Node::Unit(u) => f(u),
            Node::Ctrl(c) => {
                for s in &c.stages {
                    s.visit_units(f);
                }
            }
        }
    }

    /// Visits every controller in the subtree (including self).
    pub fn visit_ctrls<'a>(&'a self, f: &mut impl FnMut(&'a Ctrl)) {
        if let Node::Ctrl(c) = self {
            f(c);
            for s in &c.stages {
                s.visit_ctrls(f);
            }
        }
    }
}

/// A dense arena of stage (unit) names: each distinct name gets a `u32`
/// id, assigned in first-seen order. The simulator interns a design's
/// stage names once per run and then accumulates per-stage statistics in
/// a flat `Vec` indexed by id, instead of allocating `String` keys into a
/// `BTreeMap` on every event. Units sharing a name share an id, matching
/// the map-based accumulation they replace.
#[derive(Debug, Clone, Default)]
pub struct StageInterner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl StageInterner {
    /// An empty arena.
    #[must_use]
    pub fn new() -> StageInterner {
        StageInterner::default()
    }

    /// Interns every unit name in `design`, in tree order.
    #[must_use]
    pub fn for_design(design: &Design) -> StageInterner {
        let mut arena = StageInterner::new();
        design.root.visit_units(&mut |u| {
            arena.intern(&u.name);
        });
        arena
    }

    /// Returns the id for `name`, allocating the next dense id on first
    /// sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// The name behind `id`, if allocated.
    #[must_use]
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct names interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names in id order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// Which optimization level produced the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignStyle {
    /// HLS-style baseline: inner parallelism + burst locality only.
    Baseline,
    /// Tiled, but stages composed sequentially.
    Tiled,
    /// Tiled with metapipelining.
    Metapipelined,
}

impl fmt::Display for DesignStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignStyle::Baseline => write!(f, "baseline"),
            DesignStyle::Tiled => write!(f, "+tiling"),
            DesignStyle::Metapipelined => write!(f, "+tiling+metapipelining"),
        }
    }
}

/// A complete hardware design.
#[derive(Debug, Clone)]
pub struct Design {
    /// Application name.
    pub name: String,
    /// Optimization level.
    pub style: DesignStyle,
    /// Root controller.
    pub root: Node,
    /// On-chip memory table.
    pub buffers: Vec<Buffer>,
}

impl Design {
    /// Looks up a buffer.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn buffer(&self, id: BufId) -> &Buffer {
        &self.buffers[id.0]
    }

    /// Total on-chip memory bytes.
    pub fn on_chip_bytes(&self) -> u64 {
        self.buffers.iter().map(|b| b.bytes()).sum()
    }

    /// Counts template instances by name (for the Table 4 report).
    pub fn template_counts(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        self.root.visit_units(&mut |u| {
            *counts
                .entry(u.kind.template_name().to_string())
                .or_default() += 1;
        });
        self.root.visit_ctrls(&mut |c| {
            *counts.entry(c.kind.to_string()).or_default() += 1;
        });
        for b in &self.buffers {
            *counts.entry(b.kind.to_string()).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Renders the design as an indented block diagram (the textual
    /// equivalent of Figure 6).
    pub fn to_diagram(&self) -> String {
        let mut out = format!("design {} [{}]\n", self.name, self.style);
        render(&self.root, 1, self, &mut out);
        out.push_str("memories:\n");
        for b in &self.buffers {
            out.push_str(&format!(
                "  [{}] {} : {} x {}B ({}){}\n",
                b.id.0,
                b.name,
                b.words,
                b.word_bytes,
                b.kind,
                if b.banks > 1 {
                    format!(", {} banks", b.banks)
                } else {
                    String::new()
                }
            ));
        }
        out
    }
}

fn render(node: &Node, indent: usize, design: &Design, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Ctrl(c) => {
            out.push_str(&format!("{pad}{} `{}` x{}\n", c.kind, c.name, c.iters));
            for s in &c.stages {
                render(s, indent + 1, design, out);
            }
        }
        Node::Unit(u) => {
            let extra = match &u.kind {
                UnitKind::TileLoad { buf } => {
                    format!(" -> {}", design.buffer(*buf).name)
                }
                UnitKind::TileStore { buf } => {
                    format!(" <- {}", design.buffer(*buf).name)
                }
                k => format!(" x{} lanes={}", u.elems, k.lanes()),
            };
            out.push_str(&format!(
                "{pad}{} `{}`{extra}\n",
                u.kind.template_name(),
                u.name
            ));
        }
    }
}

/// One row of the paper's Table 4 (template inventory).
#[derive(Debug, Clone)]
pub struct TemplateRow {
    /// Template name.
    pub template: &'static str,
    /// Category (memory / pipelined execution unit / controller).
    pub category: &'static str,
    /// Short description.
    pub description: &'static str,
    /// The IR construct that instantiates it.
    pub ir_construct: &'static str,
}

/// The template inventory of Table 4.
pub fn table4() -> Vec<TemplateRow> {
    vec![
        TemplateRow {
            template: "Buffer",
            category: "Memories",
            description: "On-chip scratchpad memory",
            ir_construct: "Statically sized array",
        },
        TemplateRow {
            template: "Double buffer",
            category: "Memories",
            description: "Buffer coupling two stages in a metapipeline",
            ir_construct: "Same as metapipeline controller",
        },
        TemplateRow {
            template: "Cache",
            category: "Memories",
            description: "Tagged memory for random main-memory access patterns",
            ir_construct: "Non-affine accesses",
        },
        TemplateRow {
            template: "Vector",
            category: "Pipelined execution units",
            description: "SIMD parallelism",
            ir_construct: "Map over scalars",
        },
        TemplateRow {
            template: "Reduction tree",
            category: "Pipelined execution units",
            description: "Parallel reduction of associative operations",
            ir_construct: "MultiFold over scalars",
        },
        TemplateRow {
            template: "Parallel FIFO",
            category: "Pipelined execution units",
            description: "Buffers ordered outputs of dynamic size",
            ir_construct: "FlatMap over scalars",
        },
        TemplateRow {
            template: "CAM",
            category: "Pipelined execution units",
            description: "Fully associative key-value store",
            ir_construct: "GroupByFold over scalars",
        },
        TemplateRow {
            template: "Sequential",
            category: "Controllers",
            description: "Coordinates sequential execution",
            ir_construct: "Sequential IR node",
        },
        TemplateRow {
            template: "Parallel",
            category: "Controllers",
            description: "Task-parallel controller",
            ir_construct: "Independent IR nodes",
        },
        TemplateRow {
            template: "Metapipeline",
            category: "Controllers",
            description: "Pipelined coordination of nested parallel patterns",
            ir_construct: "Outer pattern with multiple inner patterns",
        },
        TemplateRow {
            template: "Tile memory",
            category: "Controllers",
            description: "Memory command generator for tile transfers",
            ir_construct: "Transformer-inserted array copy",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_design() -> Design {
        let buffers = vec![
            Buffer {
                id: BufId(0),
                name: "xTile".into(),
                words: 1024,
                word_bytes: 4,
                kind: BufferKind::DoubleBuffer,
                banks: 4,
                readers: 1,
                writers: 1,
            },
            Buffer {
                id: BufId(1),
                name: "acc".into(),
                words: 64,
                word_bytes: 4,
                kind: BufferKind::Buffer,
                banks: 1,
                readers: 1,
                writers: 1,
            },
        ];
        let load = Unit {
            name: "load_x".into(),
            kind: UnitKind::TileLoad { buf: BufId(0) },
            elems: 1024,
            ops_per_elem: 0,
            depth: 4,
            streams: vec![DramStream {
                words: 1024,
                run_words: 1024,
                prefetch: true,
                write: false,
            }],
            reads: vec![],
            writes: vec![BufId(0)],
        };
        let compute = Unit {
            name: "reduce".into(),
            kind: UnitKind::ReduceTree { lanes: 16 },
            elems: 1024,
            ops_per_elem: 1,
            depth: 8,
            streams: vec![],
            reads: vec![BufId(0)],
            writes: vec![BufId(1)],
        };
        Design {
            name: "tiny".into(),
            style: DesignStyle::Metapipelined,
            root: Node::Ctrl(Ctrl {
                name: "top".into(),
                kind: CtrlKind::Metapipeline,
                iters: 16,
                stages: vec![Node::Unit(load), Node::Unit(compute)],
            }),
            buffers,
        }
    }

    #[test]
    fn on_chip_bytes_doubles_double_buffers() {
        let d = tiny_design();
        assert_eq!(d.on_chip_bytes(), 1024 * 4 * 2 + 64 * 4);
    }

    #[test]
    fn template_counts_cover_all_kinds() {
        let d = tiny_design();
        let counts = d.template_counts();
        let get = |name: &str| {
            counts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("Tile memory (load)"), 1);
        assert_eq!(get("Reduction tree"), 1);
        assert_eq!(get("Metapipeline"), 1);
        assert_eq!(get("double-buffer"), 1);
    }

    #[test]
    fn diagram_renders() {
        let d = tiny_design();
        let text = d.to_diagram();
        assert!(text.contains("Metapipeline `top` x16"), "{text}");
        assert!(text.contains("-> xTile"), "{text}");
    }

    #[test]
    fn table4_has_eleven_rows() {
        assert_eq!(table4().len(), 11);
    }

    #[test]
    fn visit_units_counts() {
        let d = tiny_design();
        let mut n = 0;
        d.root.visit_units(&mut |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn interner_assigns_dense_ids_in_tree_order() {
        let d = tiny_design();
        let arena = StageInterner::for_design(&d);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.name(0), Some("load_x"));
        assert_eq!(arena.name(1), Some("reduce"));
        assert_eq!(arena.name(2), None);
    }

    #[test]
    fn interner_merges_duplicate_names() {
        let mut arena = StageInterner::new();
        let a = arena.intern("stage");
        let b = arena.intern("other");
        let c = arena.intern("stage");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.names().collect::<Vec<_>>(), vec!["stage", "other"]);
    }
}
