//! Hardware generation integration tests: tiled programs become
//! metapipelined template designs (Figure 6 structure) and untiled
//! programs become the HLS-style baseline.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pphw_hw::design::{BufferKind, CtrlKind, DesignStyle, Node, UnitKind};
use pphw_hw::{design_area, generate, HwConfig};
use pphw_ir::builder::ProgramBuilder;
use pphw_ir::pattern::Init;
use pphw_ir::size::Size;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_transform::{tile_program, TileConfig};

fn gemm_program() -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let m = b.size("m");
    let n = b.size("n");
    let p = b.size("p");
    let x = b.input("x", DType::F32, vec![m.clone(), p.clone()]);
    let y = b.input("y", DType::F32, vec![p.clone(), n.clone()]);
    let out = b.with_ctx(|c| {
        c.map(vec![m, n], |c, idx| {
            let (i, j) = (idx[0], idx[1]);
            c.fold(
                "dot",
                vec![p.clone()],
                vec![],
                ScalarType::Prim(DType::F32),
                Init::zeros(),
                |c, kk, acc| {
                    let prod = c.mul(
                        c.read(x, vec![c.var(i), c.var(kk[0])]),
                        c.read(y, vec![c.var(kk[0]), c.var(j)]),
                    );
                    c.add(c.var(acc), prod)
                },
                |c, a, b2| c.add(c.var(a), c.var(b2)),
            )
        })
    });
    b.finish(vec![out])
}

fn sizes() -> Vec<(&'static str, i64)> {
    vec![("m", 64), ("n", 64), ("p", 64)]
}

fn env() -> pphw_ir::SizeEnv {
    Size::env(&sizes())
}

#[test]
fn tiled_gemm_generates_metapipeline() {
    let prog = gemm_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes());
    let tiled = tile_program(&prog, &cfg).unwrap();
    let design = generate(
        &tiled,
        &env(),
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();

    let mut meta = 0;
    design.root.visit_ctrls(&mut |c| {
        if c.kind == CtrlKind::Metapipeline {
            meta += 1;
        }
    });
    assert!(meta >= 1, "no metapipeline:\n{}", design.to_diagram());

    let mut loads = 0;
    let mut trees = 0;
    design.root.visit_units(&mut |u| match u.kind {
        UnitKind::TileLoad { .. } => loads += 1,
        UnitKind::ReduceTree { .. } => trees += 1,
        _ => {}
    });
    assert!(
        loads >= 2,
        "expected x and y tile loads:\n{}",
        design.to_diagram()
    );
    assert!(
        trees >= 1,
        "expected dot-product reduce tree:\n{}",
        design.to_diagram()
    );
}

#[test]
fn tiled_gemm_promotes_double_buffers() {
    let prog = gemm_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes());
    let tiled = tile_program(&prog, &cfg).unwrap();
    let design = generate(
        &tiled,
        &env(),
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();
    let doubles = design
        .buffers
        .iter()
        .filter(|b| b.kind == BufferKind::DoubleBuffer)
        .count();
    assert!(
        doubles >= 1,
        "tile buffers feeding compute stages must be double buffered:\n{}",
        design.to_diagram()
    );
}

#[test]
fn sequential_mode_serializes_memory_stages() {
    // Without metapipelining, every controller containing tile-memory
    // stages composes them sequentially; pure compute loops still pipeline
    // (the paper's baseline already exploits pipelining within patterns).
    let prog = gemm_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes());
    let tiled = tile_program(&prog, &cfg).unwrap();
    let design = generate(
        &tiled,
        &env(),
        &HwConfig::default().with_metapipeline(false),
        DesignStyle::Tiled,
    )
    .unwrap();
    fn check(node: &Node, diagram: &str) {
        if let Node::Ctrl(c) = node {
            let has_mem = c.stages.iter().any(|s| {
                let mut found = false;
                s.visit_units(&mut |u| {
                    if !u.streams.is_empty() {
                        found = true;
                    }
                });
                found
            });
            if has_mem {
                assert_ne!(c.kind, CtrlKind::Metapipeline, "{diagram}");
            }
            for s in &c.stages {
                check(s, diagram);
            }
        }
    }
    check(&design.root, &design.to_diagram());
}

#[test]
fn baseline_gemm_streams_from_dram() {
    let prog = gemm_program();
    let design = generate(&prog, &env(), &HwConfig::baseline(), DesignStyle::Baseline).unwrap();
    // Total read traffic = per-invocation stream words times enclosing
    // controller iterations.
    fn walk(n: &Node, mult: u64, total: &mut u64) {
        match n {
            Node::Ctrl(c) => {
                for s in &c.stages {
                    walk(s, mult * c.iters, total);
                }
            }
            Node::Unit(u) => {
                *total += mult
                    * u.streams
                        .iter()
                        .filter(|s| !s.write)
                        .map(|s| s.words)
                        .sum::<u64>();
            }
        }
    }
    let mut dram_words = 0u64;
    walk(&design.root, 1, &mut dram_words);
    // The baseline vectorizes the output's innermost dimension across
    // inner_par (64) lanes: m*n/64 invocations, each re-streaming the
    // shared x row (p words) and gathering a 64-wide y slice per k
    // (p * 64 words): (m*n/64) * (p + p*64) in total.
    let (m, n, p) = (64u64, 64, 64);
    let lanes = 64u64;
    let expected = (m * n / lanes) * (p + p * lanes);
    assert_eq!(dram_words, expected, "{}", design.to_diagram());
}

#[test]
fn tiled_gemm_moves_less_dram_data_than_baseline() {
    let prog = gemm_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes());
    let tiled = tile_program(&prog, &cfg).unwrap();
    let t = generate(
        &tiled,
        &env(),
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();
    let b = generate(&prog, &env(), &HwConfig::baseline(), DesignStyle::Baseline).unwrap();
    let words = |d: &pphw_hw::Design| {
        let mut total = 0u64;
        let mut per_iter = Vec::new();
        d.root
            .visit_units(&mut |u| per_iter.push(u.streams.iter().map(|s| s.words).sum::<u64>()));
        // Scale by controller iterations: walk with multipliers.
        fn walk(n: &Node, mult: u64, total: &mut u64) {
            match n {
                Node::Ctrl(c) => {
                    for s in &c.stages {
                        walk(s, mult * c.iters, total);
                    }
                }
                Node::Unit(u) => {
                    *total += mult * u.streams.iter().map(|s| s.words).sum::<u64>();
                }
            }
        }
        walk(&d.root, 1, &mut total);
        total
    };
    let tw = words(&t);
    let bw = words(&b);
    assert!(
        tw * 2 < bw,
        "tiled design should move far less data: tiled={tw} baseline={bw}\n{}",
        t.to_diagram()
    );
}

#[test]
fn area_grows_from_baseline_to_metapipelined_mem() {
    let prog = gemm_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes());
    let tiled = tile_program(&prog, &cfg).unwrap();
    let base = generate(&prog, &env(), &HwConfig::baseline(), DesignStyle::Baseline).unwrap();
    let seq = generate(
        &tiled,
        &env(),
        &HwConfig::default().with_metapipeline(false),
        DesignStyle::Tiled,
    )
    .unwrap();
    let meta = generate(
        &tiled,
        &env(),
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();
    let (ab, at, am) = (design_area(&base), design_area(&seq), design_area(&meta));
    assert!(at.mem > 0.0 && am.mem > 0.0 && ab.mem >= 0.0);
    // Metapipelining costs extra memory (double buffers) over plain tiling.
    assert!(
        am.mem >= at.mem,
        "metapipelined mem {} < tiled mem {}",
        am.mem,
        at.mem
    );
}

#[test]
fn kmeans_style_design_preloads_centroids() {
    // k-means with k,d untiled and small: centroids are preloaded whole
    // (Figure 6, Pipe 0).
    let mut b = ProgramBuilder::new("kmeans_assign");
    let n = b.size("n");
    let k = b.size("k");
    let d = b.size("d");
    let points = b.input("points", DType::F32, vec![n.clone(), d.clone()]);
    let centroids = b.input("centroids", DType::F32, vec![k.clone(), d.clone()]);
    let out = b.with_ctx(|c| {
        let (k2, d2) = (k.clone(), d.clone());
        c.multi_fold(
            "counts",
            vec![n.clone()],
            vec![k.clone()],
            ScalarType::Prim(DType::F32),
            Init::zeros(),
            move |c, idx| {
                let i = idx[0];
                let best = c.fold(
                    "best",
                    vec![k2.clone()],
                    vec![],
                    ScalarType::Tuple(vec![DType::F32, DType::I32]),
                    Init::argmin(),
                    |c, j, acc| {
                        let j = j[0];
                        let dist = c.fold(
                            "dist",
                            vec![d2.clone()],
                            vec![],
                            ScalarType::Prim(DType::F32),
                            Init::zeros(),
                            |c, p, acc2| {
                                let diff = c.sq_diff(
                                    c.read(points, vec![c.var(i), c.var(p[0])]),
                                    c.read(centroids, vec![c.var(j), c.var(p[0])]),
                                );
                                c.add(c.var(acc2), diff)
                            },
                            |c, a, b2| c.add(c.var(a), c.var(b2)),
                        );
                        let cand = c.tuple(vec![c.var(dist), c.var(j)]);
                        c.select(c.lt(c.field(c.var(acc), 0), c.var(dist)), c.var(acc), cand)
                    },
                    |c, a, b2| {
                        c.select(
                            c.lt(c.field(c.var(a), 0), c.field(c.var(b2), 0)),
                            c.var(a),
                            c.var(b2),
                        )
                    },
                );
                let min_idx = c.scalar("minIdx", c.field(c.var(best), 1));
                (
                    vec![pphw_ir::expr::Expr::var(min_idx)],
                    vec![],
                    Box::new(move |c2: &mut pphw_ir::builder::Ctx<'_>, acc| {
                        c2.add(c2.var(acc), c2.f32(1.0))
                    }),
                )
            },
            Some(Box::new(|c2: &mut pphw_ir::builder::Ctx<'_>, a, b2| {
                c2.add(c2.var(a), c2.var(b2))
            })),
        )
    });
    let prog = b.finish(vec![out]);
    let sz = [("n", 256), ("k", 8), ("d", 16)];
    // Tile only n: k and d stay on chip.
    let cfg = TileConfig::new(&[("n", 32)], &sz);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let design = generate(
        &tiled,
        &Size::env(&sz),
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();
    let diagram = design.to_diagram();
    // The centroids tensor is preloaded whole into a buffer by a top-level
    // tile load before the main metapipeline.
    assert!(
        design.buffers.iter().any(|b| b.name.contains("centroids")),
        "no centroid buffer:\n{diagram}"
    );
    assert!(
        diagram.contains("load_centroids"),
        "no centroid preload stage:\n{diagram}"
    );
}

#[test]
fn maxj_emission_contains_templates() {
    let prog = gemm_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes());
    let tiled = tile_program(&prog, &cfg).unwrap();
    let design = generate(
        &tiled,
        &env(),
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();
    let maxj = pphw_hw::hgl::emit_maxj(&design);
    assert!(maxj.contains("class GemmKernel"), "{maxj}");
    assert!(maxj.contains("io.tileLoad"), "{maxj}");
    assert!(maxj.contains("control.metapipeline"), "{maxj}");
}

/// Data-dependent gathers get caches (Table 4's cache row): a permutation
/// read `table(idx(i))` cannot be tiled and must be served by a tagged
/// cache in front of DRAM.
#[test]
fn non_affine_access_infers_cache() {
    let mut b = ProgramBuilder::new("gather");
    let n = b.size("n");
    let m = b.size("m");
    let idx = b.input("idx", DType::I32, vec![n.clone()]);
    let table = b.input("table", DType::F32, vec![m.clone()]);
    let out = b.map(vec![n], |c, i| {
        let j = c.read(idx, vec![c.var(i[0])]);
        c.read(table, vec![j])
    });
    let prog = b.finish(vec![out]);
    let env = Size::env(&[("n", 1024), ("m", 4096)]);
    let design = generate(&prog, &env, &HwConfig::baseline(), DesignStyle::Baseline).unwrap();
    assert!(
        design
            .buffers
            .iter()
            .any(|buf| buf.kind == BufferKind::Cache && buf.name.contains("table")),
        "no cache inferred for the gathered table:\n{}",
        design.to_diagram()
    );
}

/// The affine index stream feeding the gather is NOT cached (it tiles
/// normally in the optimized design).
#[test]
fn affine_stream_is_not_cached() {
    let mut b = ProgramBuilder::new("gather2");
    let n = b.size("n");
    let m = b.size("m");
    let idx = b.input("idx", DType::I32, vec![n.clone()]);
    let table = b.input("table", DType::F32, vec![m.clone()]);
    let out = b.map(vec![n], |c, i| {
        let j = c.read(idx, vec![c.var(i[0])]);
        c.read(table, vec![j])
    });
    let prog = b.finish(vec![out]);
    let env = Size::env(&[("n", 1024), ("m", 4096)]);
    let design = generate(&prog, &env, &HwConfig::baseline(), DesignStyle::Baseline).unwrap();
    assert!(
        !design
            .buffers
            .iter()
            .any(|buf| buf.kind == BufferKind::Cache && buf.name.contains("idx")),
        "the affine idx stream must not get a cache:\n{}",
        design.to_diagram()
    );
}

/// GroupByFold designs contain a CAM (Table 4's CAM row).
#[test]
fn group_by_fold_infers_cam() {
    let mut b = ProgramBuilder::new("hist");
    let n = b.size("n");
    let x = b.input("x", DType::I32, vec![n.clone()]);
    let out = b.group_by_fold(
        "hist",
        n,
        ScalarType::Prim(DType::I32),
        Init::zero_i32(),
        |c, i| (c.div(c.read(x, vec![c.var(i)]), c.int(10)), c.int(1)),
        |a, b2| a.add(b2),
    );
    let prog = b.finish(vec![out]);
    let env = Size::env(&[("n", 1024)]);
    let cfg = TileConfig::new(&[("n", 128)], &[("n", 1024)]);
    let tiled = tile_program(&prog, &cfg).unwrap();
    let design = generate(
        &tiled,
        &env,
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();
    assert!(
        design.buffers.iter().any(|buf| buf.kind == BufferKind::Cam),
        "no CAM in the histogram design:\n{}",
        design.to_diagram()
    );
}

/// Adjacent independent tile loads are grouped under a Parallel controller.
#[test]
fn independent_loads_start_in_parallel() {
    let prog = gemm_program();
    let cfg = TileConfig::new(&[("m", 16), ("n", 16), ("p", 16)], &sizes());
    let tiled = tile_program(&prog, &cfg).unwrap();
    let design = generate(
        &tiled,
        &env(),
        &HwConfig::default(),
        DesignStyle::Metapipelined,
    )
    .unwrap();
    let mut par = 0;
    design.root.visit_ctrls(&mut |c| {
        if c.kind == CtrlKind::Parallel {
            par += 1;
        }
    });
    assert!(
        par >= 1,
        "x and y tile loads should be grouped in a Parallel controller:\n{}",
        design.to_diagram()
    );
}
