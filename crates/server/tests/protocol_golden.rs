//! Golden wire-protocol behavior: every `tests/corpus/*.req` line is sent
//! to a live daemon **over one TCP connection, in order**, and must
//! produce exactly the response pinned in the sibling `.expected` file.
//!
//! The corpus is the protocol's failure catalogue — malformed JSON, a
//! non-object, a missing or unknown method, a mistyped field, an unknown
//! benchmark, a limit violation, a watchdog budget overrun, a source
//! parse error — terminated by a `ping`. Running the whole catalogue over
//! a single connection pins the two properties clients depend on: every
//! failure is a typed, stable error *response* (codes and messages are
//! part of the protocol), and no failure ever drops the connection or
//! kills the daemon (the final `ping` still answers).
//!
//! Regenerate expectations with `PPHW_UPDATE_GOLDEN=1 cargo test -p
//! pphw-server --test protocol_golden` after inspecting the new output.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pphw_dse::cache::EvalCache;
use pphw_server::{Client, Limits, Server, Service};

#[test]
fn wire_protocol_failures_are_golden_and_never_drop_the_connection() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let update = std::env::var_os("PPHW_UPDATE_GOLDEN").is_some();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "req"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 10,
        "wire corpus shrank to {} files",
        files.len()
    );

    let service = Arc::new(Service::new(Limits::default(), 1, EvalCache::new()));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));

    // One connection for the whole catalogue: any dropped connection or
    // daemon panic fails the next `call`, not just a later assertion.
    let mut client = Client::connect(&addr).expect("connect");
    let mut failures = Vec::new();
    for req_path in &files {
        let req = fs::read_to_string(req_path).unwrap_or_else(|e| panic!("read {req_path:?}: {e}"));
        let req = req.trim_end_matches('\n');
        let got = client
            .call(req)
            .unwrap_or_else(|e| panic!("{req_path:?}: connection died: {e}"));
        let expected_path = req_path.with_extension("expected");
        if update {
            fs::write(&expected_path, format!("{got}\n"))
                .unwrap_or_else(|e| panic!("write {expected_path:?}: {e}"));
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("missing golden {expected_path:?}: {e}"));
        if got != want.trim_end_matches('\n') {
            failures.push(format!(
                "== {}\n-- expected --\n{}\n-- got --\n{got}",
                req_path.display(),
                want.trim_end()
            ));
        }
    }
    // The daemon survived the entire catalogue on one connection.
    let pong = client
        .call("{\"id\":\"alive\",\"method\":\"ping\"}")
        .expect("daemon must still answer after the failure catalogue");
    assert!(
        pong.contains("\"pong\":true"),
        "unexpected ping reply: {pong}"
    );

    client
        .call("{\"id\":\"bye\",\"method\":\"shutdown\"}")
        .expect("shutdown");
    handle.join().expect("join");
    assert!(
        failures.is_empty(),
        "golden wire responses diverged:\n{}",
        failures.join("\n\n")
    );
}

/// The degraded-operation catalogue: `tests/corpus-chaos/*.req` pins the
/// wire shapes of the hardening error codes. Files prefixed `overload-`
/// run against a daemon with a **zero in-flight budget** (every work
/// request sheds as retryable `EOVERLOAD`; decode-time failures still
/// answer with their own codes); files prefixed `panic-` run against a
/// daemon with debug methods enabled, whose injected handler panic must
/// come back as `EINTERNAL` on a connection that stays up.
#[test]
fn chaos_error_wire_shapes_are_golden_and_survivable() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus-chaos");
    let update = std::env::var_os("PPHW_UPDATE_GOLDEN").is_some();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "req"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 4,
        "chaos wire corpus shrank to {} files",
        files.len()
    );

    let spawn = |limits: Limits| {
        let service = Arc::new(Service::new(limits, 1, EvalCache::new()));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
        let addr = server.local_addr().expect("local_addr");
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        let client = Client::connect(&addr).expect("connect");
        (client, handle)
    };
    let (mut shed_client, shed_handle) = spawn(Limits {
        max_inflight: 0,
        ..Limits::default()
    });
    let (mut panic_client, panic_handle) = spawn(Limits {
        debug_methods: true,
        ..Limits::default()
    });

    let mut failures = Vec::new();
    for req_path in &files {
        let name = req_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let client = if name.starts_with("panic-") {
            &mut panic_client
        } else {
            &mut shed_client
        };
        let req = fs::read_to_string(req_path).unwrap_or_else(|e| panic!("read {req_path:?}: {e}"));
        let req = req.trim_end_matches('\n');
        let got = client
            .call(req)
            .unwrap_or_else(|e| panic!("{req_path:?}: connection died: {e}"));
        let expected_path = req_path.with_extension("expected");
        if update {
            fs::write(&expected_path, format!("{got}\n"))
                .unwrap_or_else(|e| panic!("write {expected_path:?}: {e}"));
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("missing golden {expected_path:?}: {e}"));
        if got != want.trim_end_matches('\n') {
            failures.push(format!(
                "== {}\n-- expected --\n{}\n-- got --\n{got}",
                req_path.display(),
                want.trim_end()
            ));
        }
    }
    // Both daemons survived their catalogue — sheds and contained panics
    // never cost the connection.
    for (label, client) in [("shed", &mut shed_client), ("panic", &mut panic_client)] {
        let pong = client
            .call("{\"id\":\"alive\",\"method\":\"ping\"}")
            .unwrap_or_else(|e| panic!("{label} daemon dead after catalogue: {e}"));
        assert!(
            pong.contains("\"pong\":true"),
            "{label} daemon: unexpected ping reply: {pong}"
        );
        client
            .call("{\"id\":\"bye\",\"method\":\"shutdown\"}")
            .unwrap_or_else(|e| panic!("{label} shutdown: {e}"));
    }
    shed_handle.join().expect("join shed");
    panic_handle.join().expect("join panic");
    assert!(
        failures.is_empty(),
        "golden chaos wire responses diverged:\n{}",
        failures.join("\n\n")
    );
}
