//! The TCP front: newline-framed request lines in, response lines out.
//!
//! Each connection gets one handler thread that reads request lines and
//! answers them **in request order**. Pipelined clients get batching for
//! free: after the first blocking read, every complete line already
//! sitting in the read buffer joins the same batch, and the batch is
//! dispatched across the work-stealing pool ([`pphw_dse::pool`]) — so a
//! client that writes ten requests before reading gets them evaluated
//! concurrently, while a lock-step client costs no extra threads.
//!
//! Shutdown is cooperative: the `shutdown` method flips the service flag,
//! each handler drains its current batch and closes (idle handlers notice
//! within one [`SHUTDOWN_POLL`] interval, so a lingering peer cannot pin
//! the daemon's exit), and the acceptor is woken by a loopback connection
//! so `run` can return and the caller can persist the measurement cache.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pphw_dse::pool;

use crate::service::{Service, ServiceStats};

/// How long a connection may sit idle mid-line before the handler gives
/// up on it (dead peers must not pin handler threads forever).
const READ_TIMEOUT: Duration = Duration::from_mins(2);

/// The socket-level read timeout. Reads wake at this interval so an idle
/// handler notices a cooperative shutdown promptly instead of pinning
/// `run`'s final join for the full [`READ_TIMEOUT`]; the idle budget
/// itself is enforced by the read loop, not the socket.
const SHUTDOWN_POLL: Duration = Duration::from_millis(250);

/// How long a response write may block before the handler gives up on the
/// connection: a stalled reader (full socket buffer, frozen peer) costs
/// the daemon one closed connection, never a wedged handler thread.
const WRITE_TIMEOUT: Duration = Duration::from_mins(1);

/// A bound listener plus the shared service it answers from.
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    /// Worker threads for intra-batch parallelism on each connection.
    batch_threads: usize,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and prepares to
    /// serve with the given worker parallelism per connection batch.
    ///
    /// # Errors
    ///
    /// Returns the bind error verbatim.
    pub fn bind(addr: &str, service: Arc<Service>, batch_threads: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            service,
            listener,
            batch_threads: batch_threads.max(1),
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Returns the socket error verbatim.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `shutdown` request is served, then
    /// joins every live handler and returns the final counters. The
    /// caller owns persistence (saving the eval cache) after this
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns an accept error that is not a transient refusal.
    pub fn run(self) -> io::Result<ServiceStats> {
        let addr = self.listener.local_addr()?;
        let live = Arc::new(AtomicUsize::new(0));
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.service.is_shutdown() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // A peer that vanished between accept and handshake is
                // its own problem, not the daemon's.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            if !self.service.try_admit_connection() {
                // Beyond the cap: one typed, retryable refusal line, then
                // close. No handler thread is spawned, so a connection
                // flood costs the daemon one bounded write per peer.
                shed_connection(&stream, self.service.limits().max_connections);
                continue;
            }
            let service = Arc::clone(&self.service);
            let live = Arc::clone(&live);
            let threads = self.batch_threads;
            live.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::spawn(move || {
                // Connection errors only end this peer's session.
                let was_shutdown = service.is_shutdown();
                let _ = serve_connection(&service, stream, threads);
                service.connection_closed();
                live.fetch_sub(1, Ordering::SeqCst);
                // The handler that *served* the shutdown request wakes
                // the acceptor with a loopback connection.
                if !was_shutdown && service.is_shutdown() {
                    let _ = TcpStream::connect(addr);
                }
            });
            handlers.push(handle);
            // Opportunistically reap finished handlers so a long-lived
            // daemon's join list stays bounded.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(self.service.stats())
    }
}

/// Serves one connection until EOF or shutdown: reads a batch of pipelined
/// request lines, evaluates the batch on the pool, writes responses in
/// request order.
/// Writes the connection-cap refusal line to a shed peer (best effort,
/// bounded by the write timeout) and lets the stream drop.
fn shed_connection(stream: &TcpStream, limit: usize) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let err = crate::protocol::overload_connections(limit);
    let line = crate::protocol::err_line(&crate::json::Json::Null, &err);
    let mut stream = stream;
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

fn serve_connection(service: &Service, stream: TcpStream, threads: usize) -> io::Result<()> {
    stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    let mut writer = io::BufWriter::new(writer);
    let max_line = service.limits().max_line_bytes;
    let mut reader = BufReader::new(stream);
    let mut batch: Vec<String> = Vec::new();
    loop {
        batch.clear();
        // First line: block (bounded by the idle budget, waking at the
        // poll interval so a cooperative shutdown is noticed promptly).
        match read_bounded_line(&mut reader, max_line, service)? {
            ReadLine::Eof => return Ok(()),
            ReadLine::TooLong => {
                write_oversize_error(&mut writer, max_line)?;
                return Ok(());
            }
            ReadLine::Line(l) => batch.push(l),
        }
        // Drain every *complete* line already buffered: these were
        // pipelined by the client and can run concurrently.
        while reader.buffer().contains(&b'\n') {
            match read_bounded_line(&mut reader, max_line, service)? {
                ReadLine::Eof => break,
                ReadLine::TooLong => {
                    write_oversize_error(&mut writer, max_line)?;
                    return Ok(());
                }
                ReadLine::Line(l) => batch.push(l),
            }
        }
        let responses: Vec<Option<String>> = if batch.len() == 1 {
            vec![service.handle_line(&batch[0])]
        } else {
            pool::run_indexed(threads, &batch, |_, line| service.handle_line(line))
        };
        for resp in responses.into_iter().flatten() {
            writer.write_all(resp.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        if service.is_shutdown() {
            return Ok(());
        }
    }
}

enum ReadLine {
    Line(String),
    Eof,
    TooLong,
}

/// Reads one newline-terminated line without ever buffering more than
/// `max` bytes of it: a peer streaming an endless line gets a bounded
/// refusal, not an unbounded allocation.
///
/// The socket wakes every [`SHUTDOWN_POLL`]; on each wake-up a shutdown
/// in progress ends the read as EOF (the daemon is going down, a
/// half-received request is dropped like any other in-flight network
/// state), and a peer idle past [`READ_TIMEOUT`] gets its timeout error
/// surfaced as before.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    service: &Service,
) -> io::Result<ReadLine> {
    let mut line = Vec::new();
    let mut last_byte = std::time::Instant::now();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Ok(if line.is_empty() {
                    ReadLine::Eof
                } else {
                    ReadLine::Line(String::from_utf8_lossy(&line).into_owned())
                });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(ReadLine::Line(String::from_utf8_lossy(&line).into_owned()));
                }
                last_byte = std::time::Instant::now();
                line.push(byte[0]);
                if line.len() > max {
                    return Ok(ReadLine::TooLong);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if service.is_shutdown() {
                    return Ok(ReadLine::Eof);
                }
                if last_byte.elapsed() >= READ_TIMEOUT {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn write_oversize_error(writer: &mut impl Write, max: usize) -> io::Result<()> {
    let err = crate::protocol::ErrorBody::new(
        crate::protocol::codes::LIMIT,
        format!("request line exceeds {max} bytes"),
    );
    let line = crate::protocol::err_line(&crate::json::Json::Null, &err);
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// A minimal blocking client for the wire protocol, used by the smoke
/// tests and the load harness. Supports both lock-step `call` and
/// pipelined `send`/`recv`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Returns the connect error verbatim.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line without waiting for the response.
    ///
    /// # Errors
    ///
    /// Returns the write error verbatim.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads one response line (blocks until the daemon answers).
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a daemon that closed mid-response.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Lock-step request/response.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn call(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// Bounds how long [`Client::recv`] may block (used by the retrying
    /// chaos client so a swallowed response becomes a retry, not a hang).
    ///
    /// # Errors
    ///
    /// Returns the socket error verbatim.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::json::parse_json;
    use crate::protocol::Limits;
    use pphw_dse::cache::EvalCache;

    fn spawn_server() -> (SocketAddr, std::thread::JoinHandle<ServiceStats>) {
        let service = Arc::new(Service::new(Limits::default(), 2, EvalCache::new()));
        let server = Server::bind("127.0.0.1:0", service, 2).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("run"));
        (addr, handle)
    }

    #[test]
    fn ping_and_shutdown_over_tcp() {
        let (addr, handle) = spawn_server();
        let mut c = Client::connect(&addr).expect("connect");
        let resp = c.call("{\"id\":1,\"method\":\"ping\"}").expect("ping");
        let v = parse_json(&resp).expect("json");
        assert_eq!(v.get("ok").and_then(crate::json::Json::as_bool), Some(true));
        c.call("{\"id\":2,\"method\":\"shutdown\"}")
            .expect("shutdown");
        let stats = handle.join().expect("join");
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn pipelined_batch_preserves_request_order() {
        let (addr, handle) = spawn_server();
        let mut c = Client::connect(&addr).expect("connect");
        for id in 0..8 {
            c.send(&format!("{{\"id\":{id},\"method\":\"ping\"}}"))
                .expect("send");
        }
        for id in 0..8 {
            let v = parse_json(&c.recv().expect("recv")).expect("json");
            assert_eq!(v.get("id").and_then(crate::json::Json::as_u64), Some(id));
        }
        c.call("{\"id\":99,\"method\":\"shutdown\"}")
            .expect("shutdown");
        handle.join().expect("join");
    }

    #[test]
    fn connection_cap_sheds_with_one_typed_line_and_daemon_survives() {
        let service = Arc::new(Service::new(
            Limits {
                max_connections: 1,
                ..Limits::default()
            },
            1,
            EvalCache::new(),
        ));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("run"));

        // First connection occupies the only slot.
        let mut first = Client::connect(&addr).expect("connect");
        let pong = first.call("{\"id\":1,\"method\":\"ping\"}").expect("ping");
        assert!(pong.contains("\"pong\":true"));

        // Second connection: one EOVERLOAD line, then close.
        let mut second = Client::connect(&addr).expect("connect");
        let refusal = second.recv().expect("shed line");
        let v = parse_json(&refusal).expect("json");
        let code = v
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(crate::json::Json::as_str);
        assert_eq!(code, Some(crate::protocol::codes::OVERLOAD));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("retryable"))
                .and_then(crate::json::Json::as_bool),
            Some(true)
        );
        assert!(second.recv().is_err(), "shed connection must close");

        // Closing the first frees the slot for a third.
        drop(first);
        let mut third = loop {
            // The slot frees when the handler notices the close; retry
            // briefly rather than racing it.
            let mut c = Client::connect(&addr).expect("connect");
            match c.call("{\"id\":2,\"method\":\"ping\"}") {
                Ok(resp) if resp.contains("\"pong\":true") => break c,
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        third
            .call("{\"id\":3,\"method\":\"shutdown\"}")
            .expect("shutdown");
        let stats = handle.join().expect("join");
        assert!(stats.shed_connections >= 1);
        assert!(stats.accepted_connections >= 2);
    }

    #[test]
    fn oversized_line_gets_a_bounded_refusal() {
        let service = Arc::new(Service::new(
            Limits {
                max_line_bytes: 64,
                ..Limits::default()
            },
            1,
            EvalCache::new(),
        ));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("run"));
        let mut c = Client::connect(&addr).expect("connect");
        let long = format!("{{\"id\":1,\"junk\":\"{}\"}}", "x".repeat(256));
        let resp = c.call(&long).expect("call");
        let v = parse_json(&resp).expect("json");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(crate::json::Json::as_str),
            Some(crate::protocol::codes::LIMIT)
        );
        // The refusal closes only this connection; the daemon lives on.
        let mut c2 = Client::connect(&addr).expect("reconnect");
        c2.call("{\"id\":2,\"method\":\"shutdown\"}")
            .expect("shutdown");
        handle.join().expect("join");
    }
}
