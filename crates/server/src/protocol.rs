//! The wire protocol: newline-framed JSON requests and responses.
//!
//! One request per line, one response per line, always in request order.
//! A request is a JSON object with a `method` field and an optional `id`
//! (number or string) that is echoed verbatim in the response; every
//! response is either
//!
//! ```text
//! {"id":ID,"ok":true,"result":{…}}
//! {"id":ID,"ok":false,"error":{"code":"E…","message":"…"}}
//! ```
//!
//! Error codes are stable and typed (see [`codes`]): a malformed line, an
//! unknown method, an over-limit payload, or an over-budget simulation
//! each map to a fixed code — never a dropped connection, never a panic.
//! The full request vocabulary is documented in the README's "Serving"
//! section; this module owns decoding (with limits enforced during
//! decode) and the canonical request fingerprint used for in-flight
//! deduplication.

use crate::json::{escape, parse_json, to_string, Json};
use pphw::OptLevel;
use pphw_dse::cache::fnv1a64;
use pphw_dse::{GuidedConfig, Objective, Strategy};
use pphw_sim::SimConfig;

/// Stable wire-protocol error codes.
pub mod codes {
    /// The line is not valid JSON.
    pub const PARSE: &str = "EPARSE";
    /// The request is well-formed JSON but violates the schema (missing
    /// or wrongly-typed field, bad enum value).
    pub const PROTO: &str = "EPROTO";
    /// The `method` field names no known method.
    pub const METHOD: &str = "EMETHOD";
    /// A payload exceeds a server limit (line length, source size,
    /// dimension product, space size).
    pub const LIMIT: &str = "ELIMIT";
    /// The simulation exceeded its per-request watchdog cycle budget.
    pub const BUDGET: &str = "EBUDGET";
    /// The `.ppl` source failed to parse or lower; the error carries the
    /// spanned diagnostics.
    pub const PPL: &str = "EPPL";
    /// The named built-in benchmark does not exist.
    pub const BENCH: &str = "EBENCH";
    /// Compilation (tiling or hardware generation) rejected the request.
    pub const COMPILE: &str = "ECOMPILE";
    /// Simulation rejected the configuration (not a budget overrun).
    pub const SIM: &str = "ESIM";
    /// Design-space exploration failed (empty space, nothing feasible).
    pub const DSE: &str = "EDSE";
    /// The server shed this request (or connection) because its in-flight
    /// work budget or connection cap is full. Always retryable: the error
    /// object carries `"retryable":true`, nothing was evaluated, and
    /// nothing was cached.
    pub const OVERLOAD: &str = "EOVERLOAD";
    /// The request handler panicked. The connection survives, the panic
    /// is reported typed, and the response is never memoized (a retry
    /// re-runs the work).
    pub const INTERNAL: &str = "EINTERNAL";
}

/// A typed protocol error: a stable code, a message, and optional extra
/// JSON (e.g. a diagnostics array) spliced into the error object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Extra `"key":value` fragments for the error object, already
    /// rendered as JSON (empty for most errors).
    pub extra: Vec<(String, String)>,
}

impl ErrorBody {
    /// A plain code + message error.
    pub fn new(code: &'static str, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            code,
            message: message.into(),
            extra: Vec::new(),
        }
    }

    /// Whether the error object carries `"retryable":true` — the client
    /// may safely resend the identical request after a backoff.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        self.extra
            .iter()
            .any(|(k, v)| k == "retryable" && v == "true")
    }

    /// Renders the `{"code":…,"message":…}` object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"code\":{},\"message\":{}",
            escape(self.code),
            escape(&self.message)
        );
        for (k, v) in &self.extra {
            use std::fmt::Write as _;
            let _ = write!(out, ",{}:{v}", escape(k));
        }
        out.push('}');
        out
    }
}

/// The typed shed error for a full in-flight work budget. Marked
/// retryable: the server did no work and cached nothing.
#[must_use]
pub fn overload_inflight(limit: usize) -> ErrorBody {
    let mut err = ErrorBody::new(
        codes::OVERLOAD,
        format!(
            "server overloaded: in-flight work budget reached (limit {limit}); retry with backoff"
        ),
    );
    err.extra
        .push(("retryable".to_string(), "true".to_string()));
    err
}

/// The typed shed error for a full connection cap. Marked retryable: the
/// daemon wrote this one line and closed the connection without reading.
#[must_use]
pub fn overload_connections(limit: usize) -> ErrorBody {
    let mut err = ErrorBody::new(
        codes::OVERLOAD,
        format!("server overloaded: connection limit reached (limit {limit}); retry with backoff"),
    );
    err.extra
        .push(("retryable".to_string(), "true".to_string()));
    err
}

/// Renders a success response line (no trailing newline).
#[must_use]
pub fn ok_line(id: &Json, result: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"result\":{result}}}",
        to_string(id)
    )
}

/// Renders an error response line (no trailing newline).
#[must_use]
pub fn err_line(id: &Json, err: &ErrorBody) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{}}}",
        to_string(id),
        err.to_json()
    )
}

/// Server-enforced request limits. Every limit degrades to a typed
/// [`codes::LIMIT`] error, so a hostile request costs one bounded parse,
/// not a worker.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum request line length in bytes (frames longer than this are
    /// rejected and the connection closed, since it cannot resync).
    pub max_line_bytes: usize,
    /// Maximum `.ppl` source size in bytes.
    pub max_source_bytes: usize,
    /// Maximum product of concrete dimension sizes (bounds compile and
    /// interpreter work).
    pub max_size_product: i64,
    /// Maximum innermost-parallelism factor.
    pub max_inner_par: u32,
    /// Maximum enumerated design-space size for one `dse` request.
    pub max_space: usize,
    /// Hard ceiling on the per-request watchdog cycle budget; client
    /// requests are clamped to this.
    pub max_cycle_budget: u64,
    /// Watchdog cycle budget applied when the request names none.
    pub default_cycle_budget: u64,
    /// Maximum simultaneously-open connections; an accept beyond the cap
    /// is answered with one [`codes::OVERLOAD`] line and closed.
    pub max_connections: usize,
    /// Maximum work requests (compile / verify / simulate / dse) allowed
    /// in flight at once; requests beyond the budget get an immediate
    /// [`codes::OVERLOAD`] instead of queuing without bound. `0` sheds
    /// every work request (useful for drain mode and tests).
    pub max_inflight: usize,
    /// Enables test-only debug methods (currently `__panic`, which
    /// exercises the panic containment path). Off by default: a
    /// production daemon answers `__panic` with [`codes::METHOD`].
    pub debug_methods: bool,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_line_bytes: 4 << 20,
            max_source_bytes: 1 << 20,
            max_size_product: 1 << 24,
            max_inner_par: 1024,
            max_space: 512,
            max_cycle_budget: 1 << 40,
            default_cycle_budget: 1 << 32,
            max_connections: 256,
            max_inflight: 64,
            debug_methods: false,
        }
    }
}

/// The program a work request operates on.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramRef {
    /// A named built-in benchmark (Table 5).
    Bench(String),
    /// Inline `.ppl` source text plus the file name used in diagnostics.
    Source {
        /// The program text.
        text: String,
        /// Diagnostic file name (defaults to `<request>`).
        file: String,
    },
}

impl ProgramRef {
    /// A stable identity token for cache keys: the bench name, or a
    /// content hash of the source text. Source programs are keyed by
    /// *content*, so two different programs that happen to share a
    /// `prog` name can never collide in the shared caches.
    #[must_use]
    pub fn cache_ident(&self) -> String {
        match self {
            ProgramRef::Bench(name) => format!("bench:{name}"),
            ProgramRef::Source { text, .. } => {
                format!("src:{:016x}", fnv1a64(text.as_bytes()))
            }
        }
    }
}

/// A decoded compile / verify / simulate request body.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkRequest {
    /// The program to operate on.
    pub program: ProgramRef,
    /// Concrete size overrides (`{"m":64}`).
    pub sizes: Vec<(String, i64)>,
    /// Tile size overrides (`{"m":8}`).
    pub tiles: Vec<(String, i64)>,
    /// Innermost parallelism override.
    pub inner_par: Option<u32>,
    /// Optimization level (`"baseline" | "tiled" | "meta"`).
    pub opt: OptLevel,
    /// Simulation substrate (defaults overridden field by field).
    pub sim: SimConfig,
    /// Requested watchdog cycle budget (clamped by the server).
    pub cycle_budget: Option<u64>,
}

/// A decoded `dse` request: a base work request plus the swept space.
#[derive(Debug, Clone, PartialEq)]
pub struct DseRequest {
    /// Program, sizes, opt level, and budget for every candidate.
    pub base: WorkRequest,
    /// Tile candidates per tuned dimension (`{"m":[4,8]}`); empty means
    /// the benchmark's default tile dimensions with power-of-two
    /// candidates.
    pub tile_candidates: Vec<(String, Vec<i64>)>,
    /// Parallelism factors swept (defaults to the base `inner_par`).
    pub inner_pars: Vec<u32>,
    /// Named substrate variants swept (defaults to `["max4"]`).
    pub sims: Vec<String>,
    /// Exhaustive (the default) or model-guided measurement
    /// (`"strategy":"guided"` plus optional `sample`/`top_k`/`explore`/
    /// `seed` tuning fields).
    pub strategy: Strategy,
    /// Ranking objective (`"objective":"min-cycles" | "cycles-area" |
    /// "area-cap"`; `area_cap` alone implies the capped objective).
    pub objective: Objective,
}

/// A decoded request: the echoed id plus the method payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response (`Json::Null` when absent).
    pub id: Json,
    /// The dispatched method.
    pub method: Method,
}

/// The method vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum Method {
    /// Liveness probe; returns `{"pong":true}`.
    Ping,
    /// Cache / dedup / request counters.
    Stats,
    /// Overload / degradation gauges: in-flight work, open connections,
    /// shed counts, panics, persistence failures.
    Health,
    /// Test-only (gated on [`Limits::debug_methods`]): panics inside the
    /// work path to prove the daemon contains it as a typed
    /// [`codes::INTERNAL`] error.
    TestPanic,
    /// Clean daemon shutdown (responds, then stops accepting).
    Shutdown,
    /// Compile to a design summary (no simulation).
    Compile(WorkRequest),
    /// Static analysis; spanned diagnostics for source programs.
    Verify(WorkRequest),
    /// Compile + cycle-accurate simulation under the watchdog budget.
    Simulate(WorkRequest),
    /// Design-space exploration over a bounded space.
    Dse(DseRequest),
}

impl Method {
    /// Whether this method does compile/simulate work that should be
    /// deduplicated and memoized (the control methods are not).
    #[must_use]
    pub fn is_work(&self) -> bool {
        matches!(
            self,
            Method::Compile(_)
                | Method::Verify(_)
                | Method::Simulate(_)
                | Method::Dse(_)
                | Method::TestPanic
        )
    }
}

fn proto(message: impl Into<String>) -> ErrorBody {
    ErrorBody::new(codes::PROTO, message)
}

fn limit(message: impl Into<String>) -> ErrorBody {
    ErrorBody::new(codes::LIMIT, message)
}

/// Decodes `{"m":64,…}` into name/value pairs, requiring positive exact
/// integers.
fn dim_pairs(v: &Json, what: &str) -> Result<Vec<(String, i64)>, ErrorBody> {
    let fields = v
        .as_obj()
        .ok_or_else(|| proto(format!("`{what}` must be an object of integers")))?;
    let mut out = Vec::with_capacity(fields.len());
    for (k, val) in fields {
        let n = val
            .as_i64()
            .filter(|n| *n > 0)
            .ok_or_else(|| proto(format!("`{what}.{k}` must be a positive integer")))?;
        out.push((k.clone(), n));
    }
    Ok(out)
}

fn decode_sim(v: Option<&Json>, limits: &Limits) -> Result<SimConfig, ErrorBody> {
    let mut sim = SimConfig::default();
    let Some(v) = v else { return Ok(sim) };
    let fields = v.as_obj().ok_or_else(|| proto("`sim` must be an object"))?;
    for (k, val) in fields {
        match k.as_str() {
            "clock_mhz" => {
                sim.clock_mhz = val
                    .as_f64()
                    .ok_or_else(|| proto("`sim.clock_mhz` must be a number"))?;
            }
            "dram_gbps" => {
                sim.dram_gbps = val
                    .as_f64()
                    .ok_or_else(|| proto("`sim.dram_gbps` must be a number"))?;
            }
            "dram_latency" => {
                sim.dram_latency = val
                    .as_u64()
                    .ok_or_else(|| proto("`sim.dram_latency` must be a non-negative integer"))?;
            }
            "burst_bytes" => {
                sim.burst_bytes = val
                    .as_u64()
                    .ok_or_else(|| proto("`sim.burst_bytes` must be a non-negative integer"))?;
            }
            other => return Err(proto(format!("unknown `sim` field `{other}`"))),
        }
    }
    // The watchdog budget is set by the request's `cycle_budget`, never
    // through `sim`; silently pre-clamp so validation below cannot be
    // used to smuggle an unbounded run.
    sim.cycle_budget = limits.default_cycle_budget;
    Ok(sim)
}

fn decode_work(obj: &Json, limits: &Limits) -> Result<WorkRequest, ErrorBody> {
    let program = match (obj.get("bench"), obj.get("source")) {
        (Some(_), Some(_)) => {
            return Err(proto("give either `bench` or `source`, not both"));
        }
        (Some(b), None) => {
            let name = b
                .as_str()
                .ok_or_else(|| proto("`bench` must be a string"))?;
            ProgramRef::Bench(name.to_string())
        }
        (None, Some(s)) => {
            let text = s
                .as_str()
                .ok_or_else(|| proto("`source` must be a string"))?;
            if text.len() > limits.max_source_bytes {
                return Err(limit(format!(
                    "source is {} bytes, limit is {}",
                    text.len(),
                    limits.max_source_bytes
                )));
            }
            let file = match obj.get("file") {
                Some(f) => f
                    .as_str()
                    .ok_or_else(|| proto("`file` must be a string"))?
                    .to_string(),
                None => "<request>".to_string(),
            };
            ProgramRef::Source {
                text: text.to_string(),
                file,
            }
        }
        (None, None) => return Err(proto("missing `bench` or `source`")),
    };
    let sizes = match obj.get("sizes") {
        Some(v) => dim_pairs(v, "sizes")?,
        None => Vec::new(),
    };
    let product: i64 = sizes
        .iter()
        .map(|(_, v)| *v)
        .fold(1i64, i64::saturating_mul);
    if product > limits.max_size_product {
        return Err(limit(format!(
            "size product {product} exceeds limit {}",
            limits.max_size_product
        )));
    }
    let tiles = match obj.get("tiles") {
        Some(v) => dim_pairs(v, "tiles")?,
        None => Vec::new(),
    };
    let inner_par = match obj.get("inner_par") {
        Some(v) => {
            let p = v
                .as_u64()
                .filter(|p| *p >= 1)
                .ok_or_else(|| proto("`inner_par` must be a positive integer"))?;
            if p > u64::from(limits.max_inner_par) {
                return Err(limit(format!(
                    "inner_par {p} exceeds limit {}",
                    limits.max_inner_par
                )));
            }
            // Bounded by the u32 limit just checked, so this never falls
            // back.
            Some(u32::try_from(p).unwrap_or(limits.max_inner_par))
        }
        None => None,
    };
    let opt = match obj.get("opt") {
        None => OptLevel::Metapipelined,
        Some(v) => match v.as_str() {
            Some("baseline") => OptLevel::Baseline,
            Some("tiled") => OptLevel::Tiled,
            Some("meta") => OptLevel::Metapipelined,
            _ => return Err(proto("`opt` must be \"baseline\", \"tiled\", or \"meta\"")),
        },
    };
    let cycle_budget = match obj.get("cycle_budget") {
        Some(v) => Some(
            v.as_u64()
                .filter(|b| *b >= 1)
                .ok_or_else(|| proto("`cycle_budget` must be a positive integer"))?,
        ),
        None => None,
    };
    Ok(WorkRequest {
        program,
        sizes,
        tiles,
        inner_par,
        opt,
        sim: decode_sim(obj.get("sim"), limits)?,
        cycle_budget,
    })
}

fn decode_dse(obj: &Json, limits: &Limits) -> Result<DseRequest, ErrorBody> {
    let base = decode_work(obj, limits)?;
    let tile_candidates = match obj.get("tile_candidates") {
        None => Vec::new(),
        Some(v) => {
            let fields = v
                .as_obj()
                .ok_or_else(|| proto("`tile_candidates` must be an object of integer arrays"))?;
            let mut out = Vec::with_capacity(fields.len());
            for (dim, arr) in fields {
                let items = arr
                    .as_arr()
                    .ok_or_else(|| proto(format!("`tile_candidates.{dim}` must be an array")))?;
                let mut cands = Vec::with_capacity(items.len());
                for item in items {
                    cands.push(item.as_i64().filter(|n| *n > 0).ok_or_else(|| {
                        proto(format!(
                            "`tile_candidates.{dim}` entries must be positive integers"
                        ))
                    })?);
                }
                out.push((dim.clone(), cands));
            }
            out
        }
    };
    let inner_pars = match obj.get("inner_pars") {
        None => Vec::new(),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| proto("`inner_pars` must be an array"))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let p = item
                    .as_u64()
                    .filter(|p| *p >= 1 && *p <= u64::from(limits.max_inner_par))
                    .ok_or_else(|| {
                        proto(format!(
                            "`inner_pars` entries must be integers in 1..={}",
                            limits.max_inner_par
                        ))
                    })?;
                // Bounded by `max_inner_par: u32` via the filter above.
                out.push(u32::try_from(p).unwrap_or(limits.max_inner_par));
            }
            out
        }
    };
    let sims = match obj.get("sims") {
        None => Vec::new(),
        Some(v) => {
            let items = v.as_arr().ok_or_else(|| proto("`sims` must be an array"))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(
                    item.as_str()
                        .ok_or_else(|| proto("`sims` entries must be strings"))?
                        .to_string(),
                );
            }
            out
        }
    };
    let strategy = decode_strategy(obj)?;
    let objective = decode_objective(obj)?;
    Ok(DseRequest {
        base,
        tile_candidates,
        inner_pars,
        sims,
        strategy,
        objective,
    })
}

/// Decodes the optional `strategy` field and its guided tuning knobs.
fn decode_strategy(obj: &Json) -> Result<Strategy, ErrorBody> {
    let tuning_present = ["sample", "top_k", "explore", "seed"]
        .iter()
        .any(|k| obj.get(k).is_some());
    let strategy = match obj.get("strategy") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| proto("`strategy` must be a string"))?,
        ),
    };
    match strategy {
        None | Some("exhaustive") => {
            if tuning_present {
                return Err(proto(
                    "`sample`/`top_k`/`explore`/`seed` need \"strategy\":\"guided\"",
                ));
            }
            Ok(Strategy::Exhaustive)
        }
        Some("guided") => {
            let d = GuidedConfig::default();
            let count = |name: &str, dflt: usize| -> Result<usize, ErrorBody> {
                match obj.get(name) {
                    None => Ok(dflt),
                    Some(v) => v
                        .as_u64()
                        .filter(|n| *n >= 1 && *n <= 1_000_000)
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| {
                            proto(format!("`{name}` must be an integer in 1..=1000000"))
                        }),
                }
            };
            let seed = match obj.get("seed") {
                None => d.seed,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| proto("`seed` must be an unsigned integer"))?,
            };
            Ok(Strategy::Guided(GuidedConfig {
                sample: count("sample", d.sample)?,
                top_k: count("top_k", d.top_k)?,
                explore: count("explore", d.explore)?,
                seed,
            }))
        }
        Some(other) => Err(proto(format!(
            "unknown strategy `{other}`; known: exhaustive, guided"
        ))),
    }
}

/// Decodes the optional `objective` / `area_cap` fields. `area_cap`
/// alone implies the capped objective, mirroring the `dse` binary.
fn decode_objective(obj: &Json) -> Result<Objective, ErrorBody> {
    let area_cap = match obj.get("area_cap") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|f| f.is_finite() && *f > 0.0)
                .ok_or_else(|| proto("`area_cap` must be a positive finite number"))?,
        ),
    };
    let objective = match obj.get("objective") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| proto("`objective` must be a string"))?,
        ),
    };
    match (objective, area_cap) {
        (None | Some("cycles-area"), None) => Ok(Objective::CyclesThenArea),
        (Some("min-cycles"), None) => Ok(Objective::MinCycles),
        (Some("area-cap") | None, Some(area_cap)) => {
            Ok(Objective::FastestUnderAreaCap { area_cap })
        }
        (Some("area-cap"), None) => Err(proto("\"objective\":\"area-cap\" needs `area_cap`")),
        (Some("min-cycles" | "cycles-area"), Some(_)) => Err(proto(
            "`area_cap` only makes sense with \"objective\":\"area-cap\"",
        )),
        (Some(other), _) => Err(proto(format!(
            "unknown objective `{other}`; known: min-cycles, cycles-area, area-cap"
        ))),
    }
}

impl Request {
    /// Decodes one request line. The returned error pairs the best-known
    /// id (so the client can correlate) with the typed failure.
    ///
    /// # Errors
    ///
    /// `(id, ErrorBody)` for malformed JSON ([`codes::PARSE`]),
    /// schema violations ([`codes::PROTO`]), unknown methods
    /// ([`codes::METHOD`]), or limit violations ([`codes::LIMIT`]).
    pub fn decode(line: &str, limits: &Limits) -> Result<Request, (Json, ErrorBody)> {
        let v = parse_json(line)
            .map_err(|e| (Json::Null, ErrorBody::new(codes::PARSE, e.to_string())))?;
        if v.as_obj().is_none() {
            return Err((Json::Null, proto("request must be a JSON object")));
        }
        let id = match v.get("id") {
            None => Json::Null,
            Some(id @ (Json::Null | Json::Num(_) | Json::Str(_))) => id.clone(),
            Some(_) => {
                return Err((Json::Null, proto("`id` must be a number or string")));
            }
        };
        let fail = |e: ErrorBody| (id.clone(), e);
        let method = v
            .get("method")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(proto("missing string field `method`")))?;
        let method = match method {
            "ping" => Method::Ping,
            "stats" => Method::Stats,
            "health" => Method::Health,
            "shutdown" => Method::Shutdown,
            "__panic" if limits.debug_methods => Method::TestPanic,
            "compile" => Method::Compile(decode_work(&v, limits).map_err(fail)?),
            "verify" => Method::Verify(decode_work(&v, limits).map_err(fail)?),
            "simulate" => Method::Simulate(decode_work(&v, limits).map_err(fail)?),
            "dse" => Method::Dse(decode_dse(&v, limits).map_err(fail)?),
            other => {
                return Err(fail(ErrorBody::new(
                    codes::METHOD,
                    format!("unknown method `{other}`"),
                )));
            }
        };
        Ok(Request { id, method })
    }

    /// The canonical fingerprint of the request *payload* (the id is
    /// excluded): two requests with equal fingerprints demand identical
    /// work, so in-flight duplicates share one evaluation and repeats are
    /// served from the response memo.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// Canonical text form of the payload. Dimension maps are sorted so
    /// field order on the wire cannot split cache entries.
    #[must_use]
    pub fn canonical(&self) -> String {
        fn dims(pairs: &[(String, i64)]) -> String {
            let mut sorted: Vec<_> = pairs.iter().collect();
            sorted.sort();
            sorted
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        }
        fn work(tag: &str, w: &WorkRequest) -> String {
            format!(
                "{tag}|prog={}|sizes={}|tiles={}|par={:?}|opt={:?}|sim={}|budget={:?}",
                w.program.cache_ident(),
                dims(&w.sizes),
                dims(&w.tiles),
                w.inner_par,
                w.opt,
                w.sim.canonical_key(),
                w.cycle_budget
            )
        }
        match &self.method {
            Method::Ping => "ping".to_string(),
            Method::Stats => "stats".to_string(),
            Method::Health => "health".to_string(),
            Method::Shutdown => "shutdown".to_string(),
            Method::TestPanic => "__panic".to_string(),
            Method::Compile(w) => work("compile", w),
            Method::Verify(w) => work("verify", w),
            Method::Simulate(w) => work("simulate", w),
            Method::Dse(d) => {
                let mut tiles: Vec<_> = d
                    .tile_candidates
                    .iter()
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect();
                tiles.sort();
                format!(
                    "dse|{}|cands={}|pars={:?}|sims={:?}|strat={:?}|obj={:?}",
                    work("base", &d.base),
                    tiles.join(","),
                    d.inner_pars,
                    d.sims,
                    d.strategy,
                    d.objective
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]

    use super::*;

    fn lim() -> Limits {
        Limits::default()
    }

    #[test]
    fn decodes_a_full_simulate_request() {
        let line = "{\"id\":7,\"method\":\"simulate\",\"bench\":\"gemm\",\
                    \"tiles\":{\"m\":8,\"n\":8},\"inner_par\":32,\"opt\":\"tiled\",\
                    \"sim\":{\"clock_mhz\":200},\"cycle_budget\":100000}";
        let req = Request::decode(line, &lim()).unwrap();
        assert_eq!(req.id, Json::Num(7.0));
        let Method::Simulate(w) = &req.method else {
            panic!("wrong method")
        };
        assert_eq!(w.program, ProgramRef::Bench("gemm".into()));
        assert_eq!(w.tiles.len(), 2);
        assert_eq!(w.inner_par, Some(32));
        assert_eq!(w.opt, OptLevel::Tiled);
        assert_eq!(w.sim.clock_mhz, 200.0);
        assert_eq!(w.cycle_budget, Some(100_000));
    }

    #[test]
    fn typed_errors_for_each_failure_class() {
        let cases: &[(&str, &str)] = &[
            ("{not json", codes::PARSE),
            ("[1,2,3]", codes::PROTO),
            ("{\"id\":1}", codes::PROTO),
            ("{\"method\":\"frobnicate\"}", codes::METHOD),
            ("{\"method\":\"compile\"}", codes::PROTO),
            (
                "{\"method\":\"compile\",\"bench\":\"gemm\",\"source\":\"x\"}",
                codes::PROTO,
            ),
            (
                "{\"method\":\"compile\",\"bench\":\"gemm\",\"opt\":\"hyper\"}",
                codes::PROTO,
            ),
            (
                "{\"method\":\"compile\",\"bench\":\"gemm\",\"inner_par\":1000000}",
                codes::LIMIT,
            ),
            (
                "{\"method\":\"compile\",\"bench\":\"gemm\",\"sizes\":{\"m\":99999999}}",
                codes::LIMIT,
            ),
            (
                "{\"method\":\"simulate\",\"bench\":\"gemm\",\"cycle_budget\":0}",
                codes::PROTO,
            ),
            (
                "{\"method\":\"simulate\",\"bench\":\"gemm\",\"sim\":{\"warp\":9}}",
                codes::PROTO,
            ),
        ];
        for (line, want) in cases {
            let (_, err) = Request::decode(line, &lim()).unwrap_err();
            assert_eq!(err.code, *want, "line {line}");
        }
    }

    #[test]
    fn id_is_preserved_through_decode_errors_when_parseable() {
        let (id, err) =
            Request::decode("{\"id\":\"abc\",\"method\":\"nope\"}", &lim()).unwrap_err();
        assert_eq!(id, Json::Str("abc".into()));
        assert_eq!(err.code, codes::METHOD);
    }

    #[test]
    fn fingerprint_ignores_id_and_field_order_but_not_payload() {
        let a = Request::decode(
            "{\"id\":1,\"method\":\"simulate\",\"bench\":\"gemm\",\"tiles\":{\"m\":8,\"n\":4}}",
            &lim(),
        )
        .unwrap();
        let b = Request::decode(
            "{\"tiles\":{\"n\":4,\"m\":8},\"method\":\"simulate\",\"id\":99,\"bench\":\"gemm\"}",
            &lim(),
        )
        .unwrap();
        let c = Request::decode(
            "{\"id\":1,\"method\":\"simulate\",\"bench\":\"gemm\",\"tiles\":{\"m\":4,\"n\":4}}",
            &lim(),
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = Request::decode(
            "{\"id\":1,\"method\":\"compile\",\"bench\":\"gemm\",\"tiles\":{\"m\":8,\"n\":4}}",
            &lim(),
        )
        .unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn dse_strategy_and_objective_decode_with_defaults_and_overrides() {
        let d = Request::decode("{\"method\":\"dse\",\"bench\":\"sumrows\"}", &lim()).unwrap();
        let Method::Dse(req) = &d.method else {
            panic!("not a dse request")
        };
        assert_eq!(req.strategy, Strategy::Exhaustive);
        assert_eq!(req.objective, Objective::CyclesThenArea);

        let g = Request::decode(
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"strategy\":\"guided\",\
             \"sample\":5,\"top_k\":7,\"seed\":9,\"objective\":\"min-cycles\"}",
            &lim(),
        )
        .unwrap();
        let Method::Dse(req) = &g.method else {
            panic!("not a dse request")
        };
        assert_eq!(
            req.strategy,
            Strategy::Guided(GuidedConfig {
                sample: 5,
                top_k: 7,
                explore: GuidedConfig::default().explore,
                seed: 9,
            })
        );
        assert_eq!(req.objective, Objective::MinCycles);

        // `area_cap` alone implies the capped objective.
        let c = Request::decode(
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"area_cap\":0.5}",
            &lim(),
        )
        .unwrap();
        let Method::Dse(req) = &c.method else {
            panic!("not a dse request")
        };
        assert_eq!(
            req.objective,
            Objective::FastestUnderAreaCap { area_cap: 0.5 }
        );

        // Requests that differ only in strategy or objective must not
        // dedup onto each other.
        assert_ne!(d.fingerprint(), g.fingerprint());
        assert_ne!(d.fingerprint(), c.fingerprint());
    }

    #[test]
    fn dse_strategy_and_objective_schema_violations_are_typed() {
        let cases = [
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"strategy\":\"random\"}",
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"strategy\":7}",
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"sample\":4}",
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"strategy\":\"guided\",\"sample\":0}",
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"objective\":\"best\"}",
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"objective\":\"area-cap\"}",
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"objective\":\"min-cycles\",\"area_cap\":0.5}",
            "{\"method\":\"dse\",\"bench\":\"sumrows\",\"area_cap\":-1.0}",
        ];
        for line in cases {
            let (_, err) = Request::decode(line, &lim()).unwrap_err();
            assert_eq!(err.code, codes::PROTO, "line {line}");
        }
    }

    #[test]
    fn source_programs_are_keyed_by_content_not_name() {
        let a = Request::decode("{\"method\":\"compile\",\"source\":\"prog p { }\"}", &lim());
        let b = Request::decode(
            "{\"method\":\"compile\",\"source\":\"prog p { } \"}",
            &lim(),
        );
        // Both decode (source validity is checked at execution); their
        // fingerprints differ because the text differs.
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn response_lines_render_stably() {
        assert_eq!(
            ok_line(&Json::Num(3.0), "{\"pong\":true}"),
            "{\"id\":3,\"ok\":true,\"result\":{\"pong\":true}}"
        );
        assert_eq!(
            err_line(
                &Json::Null,
                &ErrorBody::new(codes::METHOD, "unknown method `x`")
            ),
            "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"EMETHOD\",\
             \"message\":\"unknown method `x`\"}}"
        );
    }
}
