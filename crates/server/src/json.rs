//! A minimal, std-only JSON reader for the wire protocol.
//!
//! The workspace's JSON *writers* are hand-rolled `format!` strings (DSE
//! reports, verify reports, bench outputs); the server is the first
//! component that must also *read* JSON from untrusted clients, so this
//! module adds the other half: a recursive-descent parser over a byte
//! slice that can never panic — every malformed input becomes a
//! [`JsonError`] with a byte offset, bounded by a recursion-depth cap so
//! a hostile `[[[[…` cannot overflow the stack.
//!
//! Numbers are carried as `f64` (ample for every protocol field; request
//! decoding re-checks integer fields for exactness via [`Json::as_u64`]),
//! and object fields keep their source order in a `Vec` — the protocol
//! never needs map semantics, and insertion order keeps golden tests
//! byte-stable.

/// Maximum nesting depth accepted before the parser gives up. Deep enough
/// for any legitimate request, shallow enough that parsing is stack-safe.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers re-validated by [`Json::as_u64`] at use).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object; `None` for absent fields and
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: a number that is finite,
    /// non-negative, integral, and small enough (≤ 2⁵³) that `f64`
    /// carried it losslessly.
    #[must_use]
    // The range/integrality guard makes both casts exact.
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as an exact signed integer (same `f64` exactness bound).
    #[must_use]
    // The range/integrality guard makes both casts exact.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.is_finite() && n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Why a request line failed to parse as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// A [`JsonError`] with a byte offset for any malformed input — never a
/// panic, regardless of the bytes.
pub fn parse_json(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Escapes a string for embedding in hand-written JSON output (the same
/// minimal escaping the verify report and parse bin use, plus control
/// characters).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a [`Json`] value back to text (object fields in stored
/// order, numbers via Rust's shortest-roundtrip `{}` formatting). Used to
/// canonicalize request payloads for fingerprinting.
#[must_use]
// The integrality guard makes the `f64 -> i64` cast exact.
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
pub fn to_string(v: &Json) -> String {
    match v {
        Json::Bool(b) => b.to_string(),
        Json::Num(n) if n.is_finite() => {
            if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        // A non-finite number has no JSON spelling; emit `null` like
        // every mainstream serializer does.
        Json::Null | Json::Num(_) => "null".to_string(),
        Json::Str(s) => escape(s),
        Json::Arr(items) => {
            let body: Vec<String> = items.iter().map(to_string).collect();
            format!("[{}]", body.join(","))
        }
        Json::Obj(fields) => {
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}:{}", escape(k), to_string(v)))
                .collect();
            format!("{{{}}}", body.join(","))
        }
    }
}

struct Parser<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one complete UTF-8 scalar (input is a &str, so
                    // char boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    match std::str::from_utf8(&rest[..len.min(rest.len())]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self
            .pos
            .checked_add(4)
            .ok_or_else(|| self.err("overflow"))?;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(
            parse_json("\"a\\n\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("a\né😀".to_string())
        );
        let v = parse_json("{\"a\":[1,2],\"b\":{\"c\":false}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_inputs_with_offsets() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "trueX",
            "1.2.3",
            "\"\\q\"",
            "\"unterminated",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "01x",
            "{\"a\":1,}",
            "[,]",
            "1e",
            "\u{1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn integer_exactness_is_enforced() {
        assert_eq!(parse_json("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
        assert_eq!(parse_json("-1").unwrap().as_i64(), Some(-1));
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_canonical_text() {
        let src = "{\"m\":\"simulate\",\"tiles\":{\"m\":8},\"par\":32,\"x\":[1,2.5,\"s\"]}";
        let v = parse_json(src).unwrap();
        let text = to_string(&v);
        assert_eq!(parse_json(&text).unwrap(), v);
        assert_eq!(text, to_string(&parse_json(&text).unwrap()));
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
