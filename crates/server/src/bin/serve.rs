//! The compilation-as-a-service daemon.
//!
//! Usage:
//! `cargo run --release -p pphw-server --bin serve [--addr HOST:PORT]
//!  [--threads N] [--dse-threads N] [--cache PATH] [--cache-sync-every N]
//!  [--cache-compact-bytes N] [--max-space N] [--max-connections N]
//!  [--max-inflight N] [--default-cycle-budget N] [--max-cycle-budget N]
//!  [--debug-methods] [--print-addr]`
//!
//! - `--addr HOST:PORT`  listen address (default `127.0.0.1:7340`; port
//!   `0` picks an ephemeral port — combine with `--print-addr`)
//! - `--threads N`       worker threads per connection batch (default 4)
//! - `--dse-threads N`   worker threads inside one `dse` request
//!   (default 2 — a serving daemon balances many requests rather than
//!   racing one sweep)
//! - `--cache PATH`      persistent measurement cache, opened
//!   **journaled**: the snapshot (and any journal tail) is recovered at
//!   startup, every evaluation is appended to `PATH.jnl` as it lands, and
//!   a clean shutdown checkpoints the journal into the snapshot. `kill
//!   -9` loses at most the last unsynced append batch.
//! - `--cache-sync-every N`  fsync the journal every N appends
//!   (default 8; `1` = maximum durability, every evaluation)
//! - `--cache-compact-bytes N`  compact the journal into the snapshot
//!   once it exceeds N bytes (default 4 MiB)
//! - `--max-space N`     per-request DSE candidate ceiling
//! - `--max-connections N` / `--max-inflight N`  overload protection:
//!   connections beyond the cap get one typed retryable `EOVERLOAD` line;
//!   work beyond the in-flight budget is shed the same way
//! - `--default-cycle-budget N` / `--max-cycle-budget N`  watchdog
//!   defaults and clamp for simulation requests
//! - `--debug-methods`   expose fault-injection debug methods
//!   (`__panic`) — test harnesses only, never production
//! - `--print-addr`      print `listening on ADDR` once bound (scripts
//!   parse this to find an ephemeral port)
//!
//! The daemon runs until a client sends `{"method":"shutdown"}`, then
//! checkpoints the cache (if `--cache`) and prints the final counters.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use pphw_dse::cache::EvalCache;
use pphw_dse::JournalConfig;
use pphw_server::{Limits, Server, Service};

struct Args {
    addr: String,
    threads: usize,
    dse_threads: usize,
    cache: Option<String>,
    journal_cfg: JournalConfig,
    limits: Limits,
    print_addr: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7340".to_string(),
        threads: 4,
        dse_threads: 2,
        cache: None,
        journal_cfg: JournalConfig::default(),
        limits: Limits::default(),
        print_addr: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads N"),
            "--dse-threads" => {
                args.dse_threads = val("--dse-threads").parse().expect("--dse-threads N");
            }
            "--cache" => args.cache = Some(val("--cache")),
            "--cache-sync-every" => {
                args.journal_cfg.sync_every = val("--cache-sync-every")
                    .parse()
                    .expect("--cache-sync-every N");
            }
            "--cache-compact-bytes" => {
                args.journal_cfg.compact_bytes = val("--cache-compact-bytes")
                    .parse()
                    .expect("--cache-compact-bytes N");
            }
            "--max-space" => {
                args.limits.max_space = val("--max-space").parse().expect("--max-space N");
            }
            "--max-connections" => {
                args.limits.max_connections = val("--max-connections")
                    .parse()
                    .expect("--max-connections N");
            }
            "--max-inflight" => {
                args.limits.max_inflight = val("--max-inflight").parse().expect("--max-inflight N");
            }
            "--default-cycle-budget" => {
                args.limits.default_cycle_budget = val("--default-cycle-budget")
                    .parse()
                    .expect("--default-cycle-budget N");
            }
            "--max-cycle-budget" => {
                args.limits.max_cycle_budget = val("--max-cycle-budget")
                    .parse()
                    .expect("--max-cycle-budget N");
            }
            "--debug-methods" => args.limits.debug_methods = true,
            "--print-addr" => args.print_addr = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let evals = match &args.cache {
        Some(p) => match EvalCache::open_journaled_with(Path::new(p), args.journal_cfg) {
            Ok(cache) => {
                let js = cache.journal_stats().unwrap_or_default();
                eprintln!(
                    "eval cache: {} entries recovered from {p} \
                     ({} snapshot + {} journal, {} torn byte(s) discarded)",
                    cache.len(),
                    js.recovered_snapshot,
                    js.recovered_journal,
                    js.torn_tail_bytes
                );
                cache
            }
            Err(e) => {
                // Degraded: serve from the snapshot alone, without
                // crash-safety, rather than refuse to start.
                eprintln!("eval cache: journal open failed ({e}); running unjournaled");
                let cache = EvalCache::load_or_cold(Path::new(p));
                eprintln!("eval cache: {} entries preloaded from {p}", cache.len());
                cache
            }
        },
        None => EvalCache::new(),
    };
    let service = Arc::new(Service::new(args.limits, args.dse_threads, evals));
    let server = match Server::bind(&args.addr, Arc::clone(&service), args.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) if args.print_addr => println!("listening on {addr}"),
        Ok(addr) => eprintln!("listening on {addr}"),
        Err(e) => {
            eprintln!("local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    let stats = match server.run() {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(p) = &args.cache {
        let cache = service.eval_cache();
        let result = if cache.is_journaled() {
            // Fold the journal into the snapshot so the next start
            // recovers from the snapshot alone.
            cache.checkpoint().map_err(|e| e.to_string())
        } else {
            cache.save(Path::new(p)).map_err(|e| e.to_string())
        };
        match result {
            Ok(()) => eprintln!("eval cache: {} entries saved to {p}", cache.len()),
            Err(e) => {
                service.note_save_failure();
                eprintln!("eval cache: save failed: {e}");
            }
        }
        if let Some(js) = cache.journal_stats() {
            eprintln!(
                "eval journal: {} appended, {} sync(s), {} compaction(s), {} io error(s)",
                js.appended, js.syncs, js.compactions, js.io_errors
            );
        }
    }
    eprintln!("final stats: {}", stats.to_json());
    ExitCode::SUCCESS
}
