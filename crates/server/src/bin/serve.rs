//! The compilation-as-a-service daemon.
//!
//! Usage:
//! `cargo run --release -p pphw-server --bin serve [--addr HOST:PORT]
//!  [--threads N] [--dse-threads N] [--cache PATH] [--max-space N]
//!  [--default-cycle-budget N] [--max-cycle-budget N] [--print-addr]`
//!
//! - `--addr HOST:PORT`  listen address (default `127.0.0.1:7340`; port
//!   `0` picks an ephemeral port — combine with `--print-addr`)
//! - `--threads N`       worker threads per connection batch (default 4)
//! - `--dse-threads N`   worker threads inside one `dse` request
//!   (default 2 — a serving daemon balances many requests rather than
//!   racing one sweep)
//! - `--cache PATH`      persistent measurement cache: loaded at startup
//!   (cold if missing or damaged), saved at shutdown
//! - `--max-space N`     per-request DSE candidate ceiling
//! - `--default-cycle-budget N` / `--max-cycle-budget N`  watchdog
//!   defaults and clamp for simulation requests
//! - `--print-addr`      print `listening on ADDR` once bound (scripts
//!   parse this to find an ephemeral port)
//!
//! The daemon runs until a client sends `{"method":"shutdown"}`, then
//! saves the cache (if `--cache`) and prints the final counters.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use pphw_dse::cache::EvalCache;
use pphw_server::{Limits, Server, Service};

struct Args {
    addr: String,
    threads: usize,
    dse_threads: usize,
    cache: Option<String>,
    limits: Limits,
    print_addr: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7340".to_string(),
        threads: 4,
        dse_threads: 2,
        cache: None,
        limits: Limits::default(),
        print_addr: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads N"),
            "--dse-threads" => {
                args.dse_threads = val("--dse-threads").parse().expect("--dse-threads N");
            }
            "--cache" => args.cache = Some(val("--cache")),
            "--max-space" => {
                args.limits.max_space = val("--max-space").parse().expect("--max-space N");
            }
            "--default-cycle-budget" => {
                args.limits.default_cycle_budget = val("--default-cycle-budget")
                    .parse()
                    .expect("--default-cycle-budget N");
            }
            "--max-cycle-budget" => {
                args.limits.max_cycle_budget = val("--max-cycle-budget")
                    .parse()
                    .expect("--max-cycle-budget N");
            }
            "--print-addr" => args.print_addr = true,
            other => panic!("unknown flag {other} (see the module docs)"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let evals = match &args.cache {
        Some(p) => {
            let cache = EvalCache::load_or_cold(Path::new(p));
            eprintln!("eval cache: {} entries preloaded from {p}", cache.len());
            cache
        }
        None => EvalCache::new(),
    };
    let service = Arc::new(Service::new(args.limits, args.dse_threads, evals));
    let server = match Server::bind(&args.addr, Arc::clone(&service), args.threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) if args.print_addr => println!("listening on {addr}"),
        Ok(addr) => eprintln!("listening on {addr}"),
        Err(e) => {
            eprintln!("local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    let stats = match server.run() {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(p) = &args.cache {
        match service.eval_cache().save(Path::new(p)) {
            Ok(()) => eprintln!(
                "eval cache: {} entries saved to {p}",
                service.eval_cache().len()
            ),
            Err(e) => eprintln!("eval cache: save failed: {e}"),
        }
    }
    eprintln!("final stats: {}", stats.to_json());
    ExitCode::SUCCESS
}
