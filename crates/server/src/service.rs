//! The request engine: decodes lines, runs methods against the shared
//! caches, and renders response lines.
//!
//! One [`Service`] lives for the whole daemon process and is shared by
//! every connection. Three layers of sharing make warm traffic cheap:
//!
//! 1. **Response memo** — every work request (compile / verify /
//!    simulate / dse) is keyed by its canonical payload fingerprint in a
//!    [`DesignCache`], the exactly-once `OnceLock` table from the DSE
//!    fast lane. Identical requests *in flight* block on the first
//!    arrival's slot and share its evaluation; identical requests later
//!    are served straight from the memo. [`ServiceStats::dedup_hits`]
//!    counts both.
//! 2. **Design cache** — compile artifacts shared across requests that
//!    differ only in simulation substrate, and with the `dse` method's
//!    sweeps (one [`DesignCache`] instance for the whole process).
//! 3. **Eval cache** — the persistent measurement memo
//!    ([`EvalCache`]), loaded at startup and saved at shutdown, shared
//!    between direct `simulate` requests and `dse` sweeps.
//!
//! Every request runs under a watchdog cycle budget clamped to the
//! server's [`Limits`]: a pathological request degrades to a typed
//! [`codes::BUDGET`](crate::protocol::codes::BUDGET) error, and the
//! worker moves on. Source programs are cache-keyed by *content hash*
//! (appended to the program name), so two clients whose programs share a
//! name can never poison each other's artifacts.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use pphw::dse::{explore_with_caches, DesignArtifact};
use pphw::{compile, CompileOptions, OptLevel, PphwError};
use pphw_dse::cache::{config_key, design_key, fnv1a64, DesignCache, EvalCache};
use pphw_dse::space::Candidate;
use pphw_dse::{DseConfig, EvalOutcome, Measurement, SearchSpace};
use pphw_ir::program::Program;
use pphw_ir::span::{line_col, SourceMap};
use pphw_sim::{SimConfig, SimError};
use pphw_verify::VerifyConfig;

use crate::json::escape;
use crate::protocol::{
    codes, err_line, ok_line, overload_inflight, DseRequest, ErrorBody, Limits, Method, ProgramRef,
    Request, WorkRequest,
};

/// Counter snapshot reported by the `stats` method and the daemon's exit
/// banner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total request lines answered (including errors).
    pub requests: u64,
    /// Responses that carried `"ok":false`.
    pub errors: u64,
    /// Work requests served from the response memo — either a concurrent
    /// in-flight duplicate that shared one evaluation, or a later repeat.
    pub dedup_hits: u64,
    /// Work requests that actually evaluated (first sighting of a
    /// fingerprint).
    pub dedup_builds: u64,
    /// Designs compiled by this process.
    pub design_builds: u64,
    /// Design lookups served from an existing artifact.
    pub design_reuses: u64,
    /// Measurement-cache hits.
    pub eval_hits: u64,
    /// Measurement-cache misses.
    pub eval_misses: u64,
    /// Entries currently in the measurement cache.
    pub eval_len: u64,
    /// Work requests shed with a typed `EOVERLOAD` because the in-flight
    /// budget was full (never evaluated, never cached).
    pub shed_requests: u64,
    /// Connections refused at accept because the connection cap was full.
    pub shed_connections: u64,
    /// Connections accepted into a handler thread.
    pub accepted_connections: u64,
    /// Request handlers that panicked and were contained as `EINTERNAL`.
    pub panics: u64,
    /// Eval-cache save/checkpoint attempts that failed (logged, counted,
    /// and serving continued).
    pub save_failures: u64,
}

impl ServiceStats {
    /// Renders the stats as the `stats` result object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"errors\":{},\"dedup_hits\":{},\"dedup_builds\":{},\
             \"design_builds\":{},\"design_reuses\":{},\"eval_hits\":{},\
             \"eval_misses\":{},\"eval_len\":{},\"shed_requests\":{},\
             \"shed_connections\":{},\"accepted_connections\":{},\"panics\":{},\
             \"save_failures\":{}}}",
            self.requests,
            self.errors,
            self.dedup_hits,
            self.dedup_builds,
            self.design_builds,
            self.design_reuses,
            self.eval_hits,
            self.eval_misses,
            self.eval_len,
            self.shed_requests,
            self.shed_connections,
            self.accepted_connections,
            self.panics,
            self.save_failures
        )
    }
}

/// The memoized outcome of one work request: whether it succeeded and the
/// rendered `result` (or error object) JSON, without the id envelope.
type MemoBody = (bool, String);

/// The shared request engine. See the module docs for the cache layers.
pub struct Service {
    limits: Limits,
    /// Worker threads handed to the `dse` method's internal sweep.
    dse_threads: usize,
    designs: Arc<DesignCache<DesignArtifact>>,
    evals: EvalCache,
    memo: DesignCache<MemoBody>,
    requests: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
    /// Work requests currently evaluating (gauge, bounded by
    /// `limits.max_inflight`).
    inflight: AtomicUsize,
    /// Open connections (gauge, maintained by the TCP front).
    connections: AtomicUsize,
    shed_requests: AtomicU64,
    shed_connections: AtomicU64,
    accepted_connections: AtomicU64,
    panics: AtomicU64,
    save_failures: AtomicU64,
}

/// RAII slot in the in-flight work budget: acquired before a work request
/// evaluates, released (even across panics) when the request finishes.
struct WorkGuard<'s>(&'s AtomicUsize);

impl Drop for WorkGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Service {
    /// Creates a service with fresh in-memory caches and the given
    /// (possibly preloaded) measurement cache.
    #[must_use]
    pub fn new(limits: Limits, dse_threads: usize, evals: EvalCache) -> Service {
        Service {
            limits,
            dse_threads: dse_threads.max(1),
            designs: Arc::new(DesignCache::new()),
            evals,
            memo: DesignCache::new(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            shed_requests: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            accepted_connections: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            save_failures: AtomicU64::new(0),
        }
    }

    /// The server limits this service enforces.
    #[must_use]
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Whether a `shutdown` request has been accepted.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (also reachable through the wire method).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The persistent measurement cache (for saving at shutdown).
    #[must_use]
    pub fn eval_cache(&self) -> &EvalCache {
        &self.evals
    }

    /// Records a failed eval-cache save/checkpoint (the satellite fix:
    /// persistence failures are logged *and* counted, never silent).
    pub fn note_save_failure(&self) {
        self.save_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Tries to admit one connection under the connection cap. On `true`
    /// the caller owns a slot and must pair it with
    /// [`Service::connection_closed`]; on `false` the connection was
    /// counted shed and must be refused.
    #[must_use]
    pub fn try_admit_connection(&self) -> bool {
        let prev = self.connections.fetch_add(1, Ordering::SeqCst);
        if prev >= self.limits.max_connections {
            self.connections.fetch_sub(1, Ordering::SeqCst);
            self.shed_connections.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.accepted_connections.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Releases a connection slot taken by [`Service::try_admit_connection`].
    pub fn connection_closed(&self) {
        self.connections.fetch_sub(1, Ordering::SeqCst);
    }

    /// Tries to reserve one slot of the in-flight work budget.
    fn try_acquire_work(&self) -> Option<WorkGuard<'_>> {
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.limits.max_inflight {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.shed_requests.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(WorkGuard(&self.inflight))
    }

    /// The `health` result object: liveness plus every overload and
    /// degradation gauge a load balancer or operator needs.
    #[must_use]
    pub fn health_json(&self) -> String {
        format!(
            "{{\"healthy\":true,\"inflight\":{},\"max_inflight\":{},\
             \"connections\":{},\"max_connections\":{},\"shed_requests\":{},\
             \"shed_connections\":{},\"panics\":{},\"save_failures\":{},\
             \"eval_len\":{},\"journaled\":{}}}",
            self.inflight.load(Ordering::SeqCst),
            self.limits.max_inflight,
            self.connections.load(Ordering::SeqCst),
            self.limits.max_connections,
            self.shed_requests.load(Ordering::Relaxed),
            self.shed_connections.load(Ordering::Relaxed),
            self.panics.load(Ordering::Relaxed),
            self.save_failures.load(Ordering::Relaxed),
            self.evals.len(),
            self.evals.is_journaled()
        )
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            dedup_hits: self.memo.hits(),
            dedup_builds: self.memo.builds(),
            design_builds: self.designs.builds(),
            design_reuses: self.designs.hits(),
            eval_hits: self.evals.hits(),
            eval_misses: self.evals.misses(),
            eval_len: self.evals.len() as u64,
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            accepted_connections: self.accepted_connections.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            save_failures: self.save_failures.load(Ordering::Relaxed),
        }
    }

    /// Handles one request line end to end, returning the response line
    /// (no trailing newline). Blank lines get no response. Never panics:
    /// every failure renders as a typed error response.
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match Request::decode(line, &self.limits) {
            Ok(req) => req,
            Err((id, err)) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Some(err_line(&id, &err));
            }
        };
        let id = req.id.clone();
        let (ok, body) = if req.method.is_work() {
            match self.try_acquire_work() {
                // Budget full: shed with a typed, retryable refusal.
                // Nothing was evaluated and nothing entered the memo, so
                // a retry after backoff gets a full evaluation.
                None => (false, overload_inflight(self.limits.max_inflight).to_json()),
                Some(_guard) => {
                    // Exactly-once evaluation per fingerprint: concurrent
                    // duplicates block on the slot, later repeats hit the
                    // memo. A panicking handler unwinds out of
                    // `get_or_compute` leaving the slot uninitialized
                    // (std's `OnceLock` does not poison), so the panic is
                    // contained as a typed `EINTERNAL` that is never
                    // memoized — a retry re-runs the work — and the
                    // connection survives.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.memo
                            .get_or_compute(req.fingerprint(), || self.run_work(&req.method))
                    }));
                    match outcome {
                        Ok(memoized) => (*memoized).clone(),
                        Err(payload) => {
                            self.panics.fetch_add(1, Ordering::Relaxed);
                            let what = panic_message(payload.as_ref());
                            (
                                false,
                                ErrorBody::new(
                                    codes::INTERNAL,
                                    format!("request handler panicked: {what}"),
                                )
                                .to_json(),
                            )
                        }
                    }
                }
            }
        } else {
            match &req.method {
                Method::Ping => (true, "{\"pong\":true}".to_string()),
                Method::Stats => (true, self.stats().to_json()),
                Method::Health => (true, self.health_json()),
                Method::Shutdown => {
                    self.request_shutdown();
                    (true, "{\"shutting_down\":true}".to_string())
                }
                // is_work() covered the rest.
                _ => (
                    false,
                    ErrorBody::new(codes::METHOD, "unreachable method").to_json(),
                ),
            }
        };
        if ok {
            Some(ok_line(&id, &body))
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
            Some(format!(
                "{{\"id\":{},\"ok\":false,\"error\":{body}}}",
                crate::json::to_string(&id)
            ))
        }
    }

    fn run_work(&self, method: &Method) -> MemoBody {
        let out = match method {
            Method::Compile(w) => self.compile_method(w),
            Method::Verify(w) => self.verify_method(w),
            Method::Simulate(w) => self.simulate_method(w),
            Method::Dse(d) => self.dse_method(d),
            // Deliberate crash to prove containment (decoded only when
            // `Limits::debug_methods` is on).
            Method::TestPanic => panic!("injected panic (__panic debug method)"),
            // is_work() gates this path to the five above.
            _ => Err(ErrorBody::new(codes::METHOD, "not a work method")),
        };
        match out {
            Ok(result) => (true, result),
            Err(err) => (false, err.to_json()),
        }
    }

    // ---- request resolution -------------------------------------------

    fn resolve(&self, w: &WorkRequest) -> Result<Resolved, ErrorBody> {
        let (prog, display_name, mut sizes, mut tiles, default_par, source) = match &w.program {
            ProgramRef::Bench(name) => {
                let Some(spec) = pphw_apps::all_benchmarks()
                    .into_iter()
                    .find(|s| s.name == name)
                else {
                    let known: Vec<&str> =
                        pphw_apps::all_benchmarks().iter().map(|s| s.name).collect();
                    return Err(ErrorBody::new(
                        codes::BENCH,
                        format!("unknown benchmark `{name}`; known: {}", known.join(", ")),
                    ));
                };
                let sizes: Vec<(String, i64)> = (spec.sizes)()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                let tiles: Vec<(String, i64)> = (spec.tiles)()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                (
                    (spec.program)(),
                    spec.name.to_string(),
                    sizes,
                    tiles,
                    spec.inner_par,
                    None,
                )
            }
            ProgramRef::Source { text, file } => {
                let mut out = pphw_frontend::parse_program(text, file)
                    .map_err(|errs| ppl_error(&errs, text, file))?;
                let display = out.program.name.clone();
                // Key source programs by content, not by their (client
                // chosen) name: the shared design/eval caches must never
                // serve one client's artifact for another's program.
                out.program.name = format!("{display}@{:016x}", fnv1a64(text.as_bytes()));
                let sizes: Vec<(String, i64)> = out
                    .program
                    .size_vars
                    .iter()
                    .map(|sv| (sv.clone(), 8))
                    .collect();
                (
                    out.program,
                    display,
                    sizes,
                    Vec::new(),
                    4,
                    Some((text.clone(), out.source_map)),
                )
            }
        };
        for (k, v) in &w.sizes {
            match sizes.iter_mut().find(|(name, _)| name == k) {
                Some(slot) => slot.1 = *v,
                None => sizes.push((k.clone(), *v)),
            }
        }
        if !w.tiles.is_empty() {
            tiles.clone_from(&w.tiles);
        }
        let mut sim = w.sim.clone();
        sim.cycle_budget = w
            .cycle_budget
            .unwrap_or(self.limits.default_cycle_budget)
            .min(self.limits.max_cycle_budget);
        Ok(Resolved {
            prog,
            display_name,
            sizes,
            tiles,
            inner_par: w.inner_par.unwrap_or(default_par),
            opt: w.opt,
            sim,
            source,
        })
    }

    // ---- methods ------------------------------------------------------

    fn compile_method(&self, w: &WorkRequest) -> Result<String, ErrorBody> {
        let r = self.resolve(w)?;
        let (artifact, _) = self.artifact_for(&r);
        match &*artifact {
            DesignArtifact::Ready {
                compiled,
                on_chip_bytes,
            } => {
                let area = compiled.area();
                let hgl = compiled.emit_hgl();
                Ok(format!(
                    "{{\"program\":{},\"opt\":{},\"tiles\":{},\"inner_par\":{},\
                     \"on_chip_bytes\":{on_chip_bytes},\"buffers\":{},\
                     \"area\":{},\"hgl_fnv1a64\":\"{:016x}\",\"hgl_lines\":{}}}",
                    escape(&r.display_name),
                    escape(&opt_name(r.opt)),
                    dims_json(&r.tiles),
                    r.inner_par,
                    compiled.design.buffers.len(),
                    area_json(area),
                    fnv1a64(hgl.as_bytes()),
                    hgl.lines().count()
                ))
            }
            DesignArtifact::Infeasible(e) => Err(ErrorBody::new(codes::COMPILE, e.clone())),
        }
    }

    fn verify_method(&self, w: &WorkRequest) -> Result<String, ErrorBody> {
        let r = self.resolve(w)?;
        let cfg = VerifyConfig {
            inner_par: r.inner_par,
            ..VerifyConfig::default()
        };
        let mut report = pphw_verify::verify_program(&r.prog, &cfg);
        // Design-level families (hazards, dataflow balance) need the
        // compiled design; a request whose design cannot compile still
        // gets its program-level diagnostics.
        let (artifact, _) = self.artifact_for(&r);
        if let DesignArtifact::Ready { compiled, .. } = &*artifact {
            report.merge(pphw_verify::verify_design(&compiled.design, &cfg));
        }
        if let Some((text, map)) = &r.source {
            report.attach_spans(map, text);
        }
        Ok(format!(
            "{{\"program\":{},\"inner_par\":{},\"error_count\":{},\"report\":{}}}",
            escape(&r.display_name),
            r.inner_par,
            report.error_count(),
            report.to_json()
        ))
    }

    fn simulate_method(&self, w: &WorkRequest) -> Result<String, ErrorBody> {
        let r = self.resolve(w)?;
        let (salt, cand) = r.salt_and_candidate();
        let ckey = config_key(&r.prog.name, &r.sizes, &salt, &cand);
        if let Some(outcome) = self.evals.get(ckey) {
            return match outcome {
                EvalOutcome::Feasible(m) => Ok(simulate_result(&r, &m)),
                EvalOutcome::Infeasible(e) => Err(ErrorBody::new(codes::COMPILE, e)),
                // Failed outcomes are never cached; treat one defensively
                // as a miss by falling through.
                EvalOutcome::Failed(_) => self.simulate_fresh(&r, ckey),
            };
        }
        self.simulate_fresh(&r, ckey)
    }

    fn simulate_fresh(&self, r: &Resolved, ckey: u64) -> Result<String, ErrorBody> {
        let (artifact, _) = self.artifact_for(r);
        let (compiled, on_chip_bytes) = match &*artifact {
            DesignArtifact::Ready {
                compiled,
                on_chip_bytes,
            } => (compiled, *on_chip_bytes),
            DesignArtifact::Infeasible(e) => {
                self.evals.insert(ckey, EvalOutcome::Infeasible(e.clone()));
                return Err(ErrorBody::new(codes::COMPILE, e.clone()));
            }
        };
        match compiled.simulate(&r.sim) {
            Ok(report) => {
                let m = Measurement {
                    cycles: report.cycles,
                    dram_words: report.dram_words,
                    on_chip_bytes,
                    area: compiled.area(),
                };
                self.evals.insert(ckey, EvalOutcome::Feasible(m));
                Ok(simulate_result(r, &m))
            }
            Err(PphwError::Sim(SimError::BudgetExceeded { what, budget })) => {
                Err(ErrorBody::new(
                    codes::BUDGET,
                    format!("simulation exceeded its {what} of {budget} (request clamped to the server's per-request watchdog)"),
                ))
            }
            Err(e) => Err(ErrorBody::new(codes::SIM, e.to_string())),
        }
    }

    fn dse_method(&self, d: &DseRequest) -> Result<String, ErrorBody> {
        let r = self.resolve(&d.base)?;
        let size_pairs: Vec<(&str, i64)> = r.sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let mut space = SearchSpace::new(&size_pairs);
        let tile_candidates: Vec<(String, Vec<i64>)> = if d.tile_candidates.is_empty() {
            r.tiles.iter().map(|(k, v)| (k.clone(), vec![*v])).collect()
        } else {
            d.tile_candidates.clone()
        };
        for (dim, cands) in &tile_candidates {
            if !r.sizes.iter().any(|(k, _)| k == dim) {
                return Err(ErrorBody::new(
                    codes::PROTO,
                    format!("tile dimension `{dim}` has no concrete size"),
                ));
            }
            space = space.with_tile_candidates(dim, cands);
        }
        let pars = if d.inner_pars.is_empty() {
            vec![r.inner_par]
        } else {
            d.inner_pars.clone()
        };
        space = space.with_inner_pars(&pars);
        let named = SimConfig::named_variants();
        let mut variants: Vec<(&str, SimConfig)> = Vec::new();
        if d.sims.is_empty() {
            variants.push(("max4", budgeted(SimConfig::default(), r.sim.cycle_budget)));
        } else {
            for want in &d.sims {
                let Some((name, cfg)) = named.iter().find(|(n, _)| *n == want.as_str()) else {
                    let known: Vec<&str> = named.iter().map(|(n, _)| *n).collect();
                    return Err(ErrorBody::new(
                        codes::PROTO,
                        format!("unknown sim variant `{want}`; known: {}", known.join(", ")),
                    ));
                };
                variants.push((*name, budgeted(cfg.clone(), r.sim.cycle_budget)));
            }
        }
        space = space.with_sim_variants(&variants);
        if space.is_empty() {
            return Err(ErrorBody::new(codes::DSE, "search space is empty"));
        }
        if space.len() > self.limits.max_space {
            return Err(ErrorBody::new(
                codes::LIMIT,
                format!(
                    "space enumerates {} candidates, limit is {}",
                    space.len(),
                    self.limits.max_space
                ),
            ));
        }
        let base_opts = r.base_options();
        let cfg = DseConfig {
            threads: self.dse_threads,
            strategy: d.strategy,
            objective: d.objective,
            ..DseConfig::default()
        };
        let report = explore_with_caches(
            &r.prog,
            &base_opts,
            &space,
            &cfg,
            &self.evals,
            Arc::clone(&self.designs),
        )
        .map_err(|e| ErrorBody::new(codes::DSE, e.to_string()))?;
        let s = report.stats;
        Ok(format!(
            "{{\"program\":{},\"best\":{{\"label\":{},\"cycles\":{},\"area_score\":{}}},\
             \"space\":{},\"evaluated\":{},\"frontier\":{},\"failures\":{},\
             \"pruned\":{},\"simulated\":{},\"sampled\":{},\"skipped_model\":{}}}",
            escape(&r.display_name),
            escape(&report.best.label),
            report.best.cycles,
            report.best.area_score,
            s.exhaustive,
            report.evaluated.len(),
            report.frontier.len(),
            report.failures.len(),
            s.pruned_total(),
            s.simulated,
            s.sampled,
            s.skipped_model
        ))
    }

    /// The shared compile artifact for a resolved request (design cache:
    /// exactly-once per design key, shared with `dse` sweeps).
    fn artifact_for(&self, r: &Resolved) -> (Arc<DesignArtifact>, u64) {
        let (salt, cand) = r.salt_and_candidate();
        let dkey = design_key(&r.prog.name, &r.sizes, &salt, &cand);
        let opts = r.base_options().tiles(
            &r.tiles
                .iter()
                .map(|(k, v)| (k.as_str(), *v))
                .collect::<Vec<_>>(),
        );
        let artifact = self.designs.get_or_compute(dkey, || {
            let mut opts = opts;
            opts.inner_par = r.inner_par;
            opts.meta_inner_par = None;
            match compile(&r.prog, &opts) {
                Ok(compiled) => {
                    let on_chip_bytes = compiled.design.on_chip_bytes();
                    if on_chip_bytes > opts.on_chip_budget_bytes {
                        DesignArtifact::Infeasible(format!(
                            "design needs {on_chip_bytes} on-chip bytes, budget is {}",
                            opts.on_chip_budget_bytes
                        ))
                    } else {
                        DesignArtifact::Ready {
                            compiled: Box::new(compiled),
                            on_chip_bytes,
                        }
                    }
                }
                Err(e) => DesignArtifact::Infeasible(e.to_string()),
            }
        });
        (artifact, dkey)
    }
}

/// A fully-resolved work request: program, effective configuration, and
/// (for source programs) the text + span map for diagnostics.
struct Resolved {
    prog: Program,
    display_name: String,
    sizes: Vec<(String, i64)>,
    tiles: Vec<(String, i64)>,
    inner_par: u32,
    opt: OptLevel,
    sim: SimConfig,
    source: Option<(String, SourceMap)>,
}

impl Resolved {
    /// Base compile options (sizes + opt level, default budget), tiles
    /// and parallelism applied by the caller or the candidate.
    fn base_options(&self) -> CompileOptions {
        let pairs: Vec<(&str, i64)> = self.sizes.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        CompileOptions::new(&pairs)
            .opt(self.opt)
            .inner_par(self.inner_par)
    }

    /// The cache salt and candidate for the direct compile/simulate path.
    /// The salt mirrors `CompileEvaluator::cache_salt` so direct requests
    /// and `dse` sweeps share design and measurement entries.
    fn salt_and_candidate(&self) -> (String, Candidate) {
        let opts = self.base_options();
        let salt = format!(
            "opt={:?};interchange={};budget={}",
            opts.opt, opts.interchange, opts.on_chip_budget_bytes
        );
        let cand = Candidate {
            tiles: self.tiles.clone(),
            inner_par: self.inner_par,
            sim_label: "req".to_string(),
            sim: self.sim.clone(),
            cap_permille: 1000,
        };
        (salt, cand)
    }
}

/// Best-effort text of a caught panic payload (`panic!` with a string or
/// formatted message; anything else renders as a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

fn opt_name(opt: OptLevel) -> String {
    match opt {
        OptLevel::Baseline => "baseline".to_string(),
        OptLevel::Tiled => "tiled".to_string(),
        OptLevel::Metapipelined => "meta".to_string(),
    }
}

fn dims_json(pairs: &[(String, i64)]) -> String {
    let mut sorted: Vec<_> = pairs.iter().collect();
    sorted.sort();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{}:{v}", escape(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn area_json(a: pphw_hw::Area) -> String {
    format!(
        "{{\"logic\":{},\"ff\":{},\"mem\":{}}}",
        a.logic, a.ff, a.mem
    )
}

fn budgeted(mut sim: SimConfig, cycle_budget: u64) -> SimConfig {
    sim.cycle_budget = cycle_budget;
    sim
}

fn simulate_result(r: &Resolved, m: &Measurement) -> String {
    format!(
        "{{\"program\":{},\"opt\":{},\"tiles\":{},\"inner_par\":{},\"cycles\":{},\
         \"dram_words\":{},\"on_chip_bytes\":{},\"area\":{}}}",
        escape(&r.display_name),
        escape(&opt_name(r.opt)),
        dims_json(&r.tiles),
        r.inner_par,
        m.cycles,
        m.dram_words,
        m.on_chip_bytes,
        area_json(m.area)
    )
}

/// Renders frontend parse errors as a [`codes::PPL`] error with a spanned
/// diagnostics array.
fn ppl_error(errs: &[pphw_frontend::ParseError], src: &str, file: &str) -> ErrorBody {
    let diags: Vec<String> = errs
        .iter()
        .map(|e| {
            let (line, col) = line_col(src, e.span.start);
            format!(
                "{{\"code\":{},\"message\":{},\"file\":{},\
                 \"span\":{{\"start\":{},\"end\":{},\"line\":{line},\"col\":{col}}}}}",
                escape(e.code),
                escape(&e.message),
                escape(file),
                e.span.start,
                e.span.end
            )
        })
        .collect();
    let mut err = ErrorBody::new(
        codes::PPL,
        format!("{} parse error(s) in {file}", errs.len()),
    );
    err.extra
        .push(("diagnostics".to_string(), format!("[{}]", diags.join(","))));
    err
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::json::Json;

    fn service() -> Service {
        Service::new(Limits::default(), 1, EvalCache::new())
    }

    fn get<'j>(v: &'j Json, path: &[&str]) -> &'j Json {
        let mut cur = v;
        for p in path {
            cur = cur.get(p).unwrap_or_else(|| panic!("missing field {p}"));
        }
        cur
    }

    fn call(svc: &Service, line: &str) -> Json {
        let resp = svc.handle_line(line).expect("response expected");
        crate::json::parse_json(&resp).expect("response is valid JSON")
    }

    #[test]
    fn ping_stats_and_shutdown_round_trip() {
        let svc = service();
        let pong = call(&svc, "{\"id\":1,\"method\":\"ping\"}");
        assert_eq!(get(&pong, &["result", "pong"]).as_bool(), Some(true));
        let stats = call(&svc, "{\"id\":2,\"method\":\"stats\"}");
        assert_eq!(get(&stats, &["result", "requests"]).as_u64(), Some(2));
        assert!(!svc.is_shutdown());
        let bye = call(&svc, "{\"id\":3,\"method\":\"shutdown\"}");
        assert_eq!(
            get(&bye, &["result", "shutting_down"]).as_bool(),
            Some(true)
        );
        assert!(svc.is_shutdown());
    }

    #[test]
    fn simulate_bench_is_cached_and_deduped() {
        let svc = service();
        let line = "{\"id\":1,\"method\":\"simulate\",\"bench\":\"gemm\"}";
        let a = call(&svc, line);
        let cycles = get(&a, &["result", "cycles"]).as_u64().unwrap();
        assert!(cycles > 0);
        let before = svc.stats();
        assert_eq!(before.dedup_builds, 1);
        assert_eq!(before.design_builds, 1);
        // Repeat: memo hit, no new design build, bit-identical result.
        let b = call(
            &svc,
            "{\"id\":2,\"method\":\"simulate\",\"bench\":\"gemm\"}",
        );
        assert_eq!(get(&a, &["result"]), get(&b, &["result"]));
        let after = svc.stats();
        assert_eq!(after.dedup_hits, before.dedup_hits + 1);
        assert_eq!(after.design_builds, 1);
    }

    #[test]
    fn compile_and_simulate_share_one_design() {
        let svc = service();
        call(
            &svc,
            "{\"id\":1,\"method\":\"compile\",\"bench\":\"sumrows\"}",
        );
        assert_eq!(svc.stats().design_builds, 1);
        call(
            &svc,
            "{\"id\":2,\"method\":\"simulate\",\"bench\":\"sumrows\"}",
        );
        let s = svc.stats();
        assert_eq!(
            s.design_builds, 1,
            "simulate must reuse the compile artifact"
        );
        assert!(s.design_reuses >= 1);
    }

    #[test]
    fn over_budget_simulation_is_a_typed_error() {
        let svc = service();
        let resp = call(
            &svc,
            "{\"id\":9,\"method\":\"simulate\",\"bench\":\"gemm\",\"cycle_budget\":1}",
        );
        assert_eq!(get(&resp, &["ok"]).as_bool(), Some(false));
        assert_eq!(get(&resp, &["error", "code"]).as_str(), Some(codes::BUDGET));
        // The failure is not pinned in the measurement cache: a bigger
        // budget succeeds.
        let ok = call(
            &svc,
            "{\"id\":10,\"method\":\"simulate\",\"bench\":\"gemm\"}",
        );
        assert_eq!(get(&ok, &["ok"]).as_bool(), Some(true));
    }

    #[test]
    fn source_programs_verify_with_spans_and_parse_errors_are_typed() {
        let svc = service();
        let src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/gemm.ppl"),
        )
        .unwrap();
        let line = format!(
            "{{\"id\":1,\"method\":\"verify\",\"source\":{}}}",
            escape(&src)
        );
        let resp = call(&svc, &line);
        assert_eq!(get(&resp, &["ok"]).as_bool(), Some(true));
        assert_eq!(get(&resp, &["result", "error_count"]).as_u64(), Some(0));

        let bad = call(
            &svc,
            "{\"id\":2,\"method\":\"verify\",\"source\":\"prog broken { x = }\"}",
        );
        assert_eq!(get(&bad, &["ok"]).as_bool(), Some(false));
        assert_eq!(get(&bad, &["error", "code"]).as_str(), Some(codes::PPL));
        let diags = get(&bad, &["error", "diagnostics"]).as_arr().unwrap();
        assert!(!diags.is_empty());
        assert!(get(&diags[0], &["span", "line"]).as_u64().is_some());
    }

    #[test]
    fn source_simulate_runs_end_to_end() {
        let svc = service();
        let src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/sumrows.ppl"),
        )
        .unwrap();
        let line = format!(
            "{{\"id\":1,\"method\":\"simulate\",\"source\":{},\"sizes\":{{\"m\":16,\"n\":16}},\"inner_par\":4}}",
            escape(&src)
        );
        let resp = call(&svc, &line);
        assert_eq!(get(&resp, &["ok"]).as_bool(), Some(true), "{resp:?}");
        assert!(get(&resp, &["result", "cycles"]).as_u64().unwrap() > 0);
    }

    #[test]
    fn dse_method_sweeps_a_bounded_space() {
        let svc = service();
        let resp = call(
            &svc,
            "{\"id\":1,\"method\":\"dse\",\"bench\":\"sumrows\",\
             \"tile_candidates\":{\"m\":[4,8]},\"inner_pars\":[16]}",
        );
        assert_eq!(get(&resp, &["ok"]).as_bool(), Some(true), "{resp:?}");
        assert_eq!(get(&resp, &["result", "space"]).as_u64(), Some(2));
        assert!(get(&resp, &["result", "best", "cycles"]).as_u64().unwrap() > 0);
        // The dse sweep populated the shared eval cache; a direct
        // simulate of the winning config must not recompile.
        assert!(svc.stats().eval_len >= 1);

        let over = call(
            &svc,
            "{\"id\":2,\"method\":\"dse\",\"bench\":\"sumrows\",\
             \"inner_pars\":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,\
             21,22,23,24,25,26,27,28,29,30,31,32,33,34,35,36,37,38,39,40,41,42,\
             43,44,45,46,47,48,49,50,51,52,53,54,55,56,57,58,59,60,61,62,63,64,\
             65,66,67,68,69,70,71,72,73,74,75,76,77,78,79,80,81,82,83,84,85,86,\
             87,88,89,90,91,92,93,94,95,96,97,98,99,100],\
             \"tile_candidates\":{\"m\":[4,8,16],\"n\":[4,8]},\
             \"sims\":[\"max4\"]}",
        );
        assert_eq!(get(&over, &["ok"]).as_bool(), Some(false));
        assert_eq!(get(&over, &["error", "code"]).as_str(), Some(codes::LIMIT));
    }

    #[test]
    fn dse_method_honors_strategy_and_objective() {
        let svc = service();
        // Guided run over a 12-point space: the calibration sample plus
        // the top slice must land under the full space size.
        let resp = call(
            &svc,
            "{\"id\":1,\"method\":\"dse\",\"bench\":\"sumrows\",\
             \"tile_candidates\":{\"m\":[4,8,16],\"n\":[4,8]},\"inner_pars\":[4,16],\
             \"strategy\":\"guided\",\"sample\":4,\"top_k\":2,\"explore\":1}",
        );
        assert_eq!(get(&resp, &["ok"]).as_bool(), Some(true), "{resp:?}");
        assert_eq!(get(&resp, &["result", "space"]).as_u64(), Some(12));
        let simulated = get(&resp, &["result", "simulated"]).as_u64().unwrap();
        let sampled = get(&resp, &["result", "sampled"]).as_u64().unwrap();
        assert!(sampled >= 1, "{resp:?}");
        assert!(simulated < 12, "guided should skip some points: {resp:?}");

        // The same space under min-cycles must report a best at least as
        // fast as the default lexicographic objective's.
        let full = call(
            &svc,
            "{\"id\":2,\"method\":\"dse\",\"bench\":\"sumrows\",\
             \"tile_candidates\":{\"m\":[4,8,16],\"n\":[4,8]},\"inner_pars\":[4,16]}",
        );
        let fastest = call(
            &svc,
            "{\"id\":3,\"method\":\"dse\",\"bench\":\"sumrows\",\
             \"tile_candidates\":{\"m\":[4,8,16],\"n\":[4,8]},\"inner_pars\":[4,16],\
             \"objective\":\"min-cycles\"}",
        );
        assert_eq!(get(&fastest, &["ok"]).as_bool(), Some(true), "{fastest:?}");
        let default_cycles = get(&full, &["result", "best", "cycles"]).as_u64().unwrap();
        let min_cycles = get(&fastest, &["result", "best", "cycles"])
            .as_u64()
            .unwrap();
        assert!(min_cycles <= default_cycles, "{fastest:?} vs {full:?}");

        // An impossible cap degrades to the typed DSE error.
        let capped = call(
            &svc,
            "{\"id\":4,\"method\":\"dse\",\"bench\":\"sumrows\",\
             \"tile_candidates\":{\"m\":[4,8]},\"inner_pars\":[4],\
             \"area_cap\":0.000001}",
        );
        assert_eq!(get(&capped, &["ok"]).as_bool(), Some(false), "{capped:?}");
        assert_eq!(get(&capped, &["error", "code"]).as_str(), Some(codes::DSE));
    }

    #[test]
    fn unknown_bench_is_typed() {
        let svc = service();
        let resp = call(&svc, "{\"id\":1,\"method\":\"compile\",\"bench\":\"nope\"}");
        assert_eq!(get(&resp, &["error", "code"]).as_str(), Some(codes::BENCH));
    }

    #[test]
    fn zero_inflight_budget_sheds_work_with_typed_retryable_overload() {
        let svc = Service::new(
            Limits {
                max_inflight: 0,
                ..Limits::default()
            },
            1,
            EvalCache::new(),
        );
        // Work requests are shed...
        let resp = call(
            &svc,
            "{\"id\":1,\"method\":\"simulate\",\"bench\":\"gemm\"}",
        );
        assert_eq!(get(&resp, &["ok"]).as_bool(), Some(false));
        assert_eq!(
            get(&resp, &["error", "code"]).as_str(),
            Some(codes::OVERLOAD)
        );
        assert_eq!(
            get(&resp, &["error", "retryable"]).as_bool(),
            Some(true),
            "sheds must be marked retryable"
        );
        // ...and nothing was evaluated or memoized.
        let s = svc.stats();
        assert_eq!(s.shed_requests, 1);
        assert_eq!(s.dedup_builds, 0);
        assert_eq!(s.design_builds, 0);
        // Control methods still answer.
        let pong = call(&svc, "{\"id\":2,\"method\":\"ping\"}");
        assert_eq!(get(&pong, &["result", "pong"]).as_bool(), Some(true));
        let health = call(&svc, "{\"id\":3,\"method\":\"health\"}");
        assert_eq!(get(&health, &["result", "shed_requests"]).as_u64(), Some(1));
        assert_eq!(get(&health, &["result", "inflight"]).as_u64(), Some(0));
    }

    #[test]
    fn admitted_work_releases_its_inflight_slot() {
        let svc = Service::new(
            Limits {
                max_inflight: 1,
                ..Limits::default()
            },
            1,
            EvalCache::new(),
        );
        // Sequential requests each fit the budget of one.
        for id in 0..3 {
            let resp = call(
                &svc,
                &format!("{{\"id\":{id},\"method\":\"simulate\",\"bench\":\"sumrows\"}}"),
            );
            assert_eq!(get(&resp, &["ok"]).as_bool(), Some(true), "{resp:?}");
        }
        assert_eq!(svc.stats().shed_requests, 0);
    }

    #[test]
    fn panicking_handler_is_contained_as_einternal_and_not_memoized() {
        let svc = Service::new(
            Limits {
                debug_methods: true,
                ..Limits::default()
            },
            1,
            EvalCache::new(),
        );
        for round in 0..2 {
            let resp = call(&svc, "{\"id\":1,\"method\":\"__panic\"}");
            assert_eq!(get(&resp, &["ok"]).as_bool(), Some(false));
            assert_eq!(
                get(&resp, &["error", "code"]).as_str(),
                Some(codes::INTERNAL),
                "round {round}"
            );
            assert!(get(&resp, &["error", "message"])
                .as_str()
                .unwrap()
                .contains("injected panic"));
            assert!(
                get(&resp, &["error"]).get("retryable").is_none(),
                "EINTERNAL is final, not retryable"
            );
        }
        let s = svc.stats();
        // Both rounds actually ran: the panic response is never memoized.
        assert_eq!(s.panics, 2);
        assert_eq!(s.dedup_hits, 0);
        // The dispatcher survived: normal work still runs afterwards.
        let ok = call(&svc, "{\"id\":2,\"method\":\"ping\"}");
        assert_eq!(get(&ok, &["result", "pong"]).as_bool(), Some(true));
    }

    #[test]
    fn panic_method_is_unknown_without_debug_methods() {
        let svc = service();
        let resp = call(&svc, "{\"id\":1,\"method\":\"__panic\"}");
        assert_eq!(get(&resp, &["error", "code"]).as_str(), Some(codes::METHOD));
        assert_eq!(svc.stats().panics, 0);
    }

    #[test]
    fn connection_accounting_caps_and_releases() {
        let svc = Service::new(
            Limits {
                max_connections: 2,
                ..Limits::default()
            },
            1,
            EvalCache::new(),
        );
        assert!(svc.try_admit_connection());
        assert!(svc.try_admit_connection());
        assert!(!svc.try_admit_connection(), "third connection must shed");
        svc.connection_closed();
        assert!(svc.try_admit_connection(), "slot freed by close");
        let s = svc.stats();
        assert_eq!(s.accepted_connections, 3);
        assert_eq!(s.shed_connections, 1);
    }

    #[test]
    fn save_failures_are_counted() {
        let svc = service();
        assert_eq!(svc.stats().save_failures, 0);
        svc.note_save_failure();
        let health = call(&svc, "{\"id\":1,\"method\":\"health\"}");
        assert_eq!(get(&health, &["result", "save_failures"]).as_u64(), Some(1));
        assert_eq!(svc.stats().save_failures, 1);
    }

    #[test]
    fn malformed_lines_never_drop_the_dispatcher() {
        let svc = service();
        for bad in ["{", "[]", "{\"id\":{},\"method\":\"ping\"}", "\u{1}", "42"] {
            let resp = call(&svc, bad);
            assert_eq!(get(&resp, &["ok"]).as_bool(), Some(false), "line {bad:?}");
        }
        assert!(svc.handle_line("   ").is_none());
    }
}
