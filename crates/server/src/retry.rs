//! A retrying wire client for hostile networks.
//!
//! [`RetryClient`] wraps [`Client`](crate::server::Client) with the
//! discipline the chaos harness demands: every logical request ends in
//! **exactly one** final outcome. Transport anomalies (I/O errors, torn
//! or duplicated bytes, a desynced response stream) cost a reconnect and
//! a retry; typed errors marked `"retryable":true` (the server's
//! `EOVERLOAD` sheds) cost a deterministic exponential backoff with
//! seeded jitter and a resend. Everything else — success or a
//! non-retryable typed error — is final and returned as-is.
//!
//! Retrying is safe because the protocol is idempotent: work requests are
//! deduplicated server-side by canonical payload fingerprint, so a
//! request whose response was swallowed by the network re-runs as a memo
//! hit, not a second evaluation.
//!
//! The jitter is driven by a seeded generator, so a chaos run with a
//! fixed seed produces the same backoff schedule every time.

use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use crate::json::{parse_json, Json};
use crate::server::Client;

/// Tuning for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Maximum attempts per logical request (first try included).
    pub max_attempts: usize,
    /// Backoff before retry `n` is `base_delay * 2^(n-1)` (capped at
    /// [`RetryConfig::max_delay`]), halved-to-full by jitter.
    pub base_delay: Duration,
    /// Upper bound on one backoff sleep.
    pub max_delay: Duration,
    /// Per-receive socket timeout: a response the network swallowed
    /// becomes a retry after this long, not a hang.
    pub read_timeout: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_attempts: 25,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(250),
            read_timeout: Duration::from_secs(30),
            jitter_seed: 0,
        }
    }
}

/// Lifetime counters for one [`RetryClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Wire attempts issued (≥ logical requests).
    pub attempts: u64,
    /// Connections (re-)established.
    pub reconnects: u64,
    /// Retries caused by a retryable typed error (`EOVERLOAD`).
    pub retried_overload: u64,
    /// Retries caused by transport trouble: I/O error, unparseable
    /// response, or a response id that did not match the request.
    pub retried_transport: u64,
}

/// The single final outcome of one logical request.
#[derive(Debug, Clone, PartialEq)]
pub enum CallOutcome {
    /// A final typed response line — `"ok":true`, or a typed error that
    /// is not retryable. The protocol guarantees exactly one of these per
    /// logical request when the server is reachable at all.
    Typed(String),
    /// Every attempt failed; `last` describes the final failure. The
    /// chaos gate treats any of these as a harness bug (the fault
    /// schedule is bounded, the server is healthy).
    Exhausted {
        /// Attempts issued.
        attempts: usize,
        /// Human-readable description of the last failure.
        last: String,
    },
}

/// A lock-step client that turns transport faults and shed responses into
/// bounded retries. See the module docs for the retry discipline.
pub struct RetryClient {
    addr: SocketAddr,
    cfg: RetryConfig,
    client: Option<Client>,
    rng_state: u64,
    stats: RetryStats,
}

impl RetryClient {
    /// Creates a client for `addr`; the connection is established lazily
    /// on the first call (and re-established after any transport fault).
    #[must_use]
    pub fn new(addr: SocketAddr, cfg: RetryConfig) -> RetryClient {
        let rng_state = cfg.jitter_seed;
        RetryClient {
            addr,
            cfg,
            client: None,
            rng_state,
            stats: RetryStats::default(),
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Sends one logical request to its single final outcome: retries
    /// transport faults (reconnecting) and retryable typed errors
    /// (backing off), returns the first final typed response, and gives
    /// up with [`CallOutcome::Exhausted`] after
    /// [`RetryConfig::max_attempts`].
    pub fn call(&mut self, line: &str) -> CallOutcome {
        let want_id = parse_json(line)
            .ok()
            .and_then(|v| v.get("id").cloned())
            .unwrap_or(Json::Null);
        let mut last = "never attempted".to_string();
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt));
            }
            self.stats.attempts += 1;
            let resp = match self.exchange(line) {
                Ok(resp) => resp,
                Err(e) => {
                    self.disconnect();
                    self.stats.retried_transport += 1;
                    last = format!("transport: {e}");
                    continue;
                }
            };
            let Ok(v) = parse_json(&resp) else {
                // Torn/duplicated bytes produced garbage: the stream can
                // no longer be trusted, resync with a fresh connection.
                self.disconnect();
                self.stats.retried_transport += 1;
                last = format!("unparseable response ({} bytes)", resp.len());
                continue;
            };
            if v.get("id") != Some(&want_id) {
                // A stale or duplicated response from a corrupted
                // exchange earlier on this connection: resync.
                self.disconnect();
                self.stats.retried_transport += 1;
                last = "response id mismatch (stream desync)".to_string();
                continue;
            }
            let ok_true = v.get("ok").and_then(Json::as_bool) == Some(true);
            let has_code = v
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .is_some();
            if !ok_true && !has_code {
                // Parsed, id matches, but the shape is not a protocol
                // response (e.g. one corrupted byte turned `"ok"` into
                // `"oK"`): the stream can't be trusted, resync.
                self.disconnect();
                self.stats.retried_transport += 1;
                last = "malformed response shape (corrupted stream)".to_string();
                continue;
            }
            let retryable = v
                .get("error")
                .and_then(|e| e.get("retryable"))
                .and_then(Json::as_bool)
                == Some(true);
            if retryable {
                self.stats.retried_overload += 1;
                last = resp;
                continue;
            }
            return CallOutcome::Typed(resp);
        }
        CallOutcome::Exhausted {
            attempts: self.cfg.max_attempts,
            last,
        }
    }

    /// One lock-step send/recv over the current (or a fresh) connection.
    fn exchange(&mut self, line: &str) -> io::Result<String> {
        if self.client.is_none() {
            let client = Client::connect(&self.addr)?;
            client.set_read_timeout(Some(self.cfg.read_timeout))?;
            self.client = Some(client);
            self.stats.reconnects += 1;
        }
        let client = self
            .client
            .as_mut()
            .ok_or_else(|| io::Error::other("client vanished"))?;
        client.call(line)
    }

    fn disconnect(&mut self) {
        self.client = None;
    }

    /// Deterministic jittered exponential backoff: half to all of
    /// `base * 2^(attempt-1)`, capped at `max_delay`.
    fn backoff(&mut self, attempt: usize) -> Duration {
        let exp = u32::try_from(attempt.saturating_sub(1))
            .unwrap_or(16)
            .min(16);
        let ceiling = self
            .cfg
            .base_delay
            .saturating_mul(2u32.saturating_pow(exp))
            .min(self.cfg.max_delay);
        let ceiling_ms = u64::try_from(ceiling.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let half = ceiling_ms / 2;
        let jitter = self.next_u64() % (ceiling_ms - half + 1);
        Duration::from_millis(half + jitter)
    }

    /// splitmix64 — tiny, seedable, and good enough for jitter.
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
