//! Compilation-as-a-service: a long-running daemon that answers
//! compile / verify / simulate / DSE requests over a newline-framed
//! JSON-over-TCP protocol, multiplexing every client onto one
//! process-wide design cache and one persistent measurement cache.
//!
//! The interactive pipeline (`parse` → `compile` → `simulate` → `dse`
//! binaries) pays full compilation for every invocation; a serving
//! deployment amortizes that across requests. This crate provides the
//! three layers:
//!
//! - [`json`] — a std-only JSON value, parser, and canonical writer (the
//!   workspace builds `--offline` with zero registry dependencies).
//! - [`protocol`] — the wire types: request decoding with per-field
//!   validation, typed error codes, server [`protocol::Limits`].
//! - [`service`] — the engine: method dispatch over the shared caches
//!   with exactly-once deduplication of identical in-flight requests.
//! - [`server`] — the TCP front: per-connection handlers, pipelined
//!   request batching onto the work-stealing pool, and a minimal
//!   [`server::Client`] for tests and the load harness.
//! - [`retry`] — a retrying client ([`retry::RetryClient`]) that drives
//!   every logical request to exactly one typed outcome across transport
//!   faults and `EOVERLOAD` sheds (used by the chaos harness).
//!
//! The daemon is hardened against crash, overload, and hostile networks:
//! the eval cache can be opened journaled (crash-safe), connections and
//! in-flight work are capped with typed retryable `EOVERLOAD` sheds, and
//! a panicking handler is contained as a typed `EINTERNAL` without
//! dropping the connection. See the README ("Serving" and "Failure model
//! & degraded operation") for the protocol and guarantees by example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate)]
#![allow(clippy::missing_panics_doc)]

pub mod json;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod service;

pub use protocol::{codes, ErrorBody, Limits};
pub use retry::{CallOutcome, RetryClient, RetryConfig, RetryStats};
pub use server::{Client, Server};
pub use service::{Service, ServiceStats};
