//! Lowering: parse tree → typed [`pphw_ir`] program + source map.
//!
//! Lowering resolves names through a lexical scope chain that mirrors the
//! scoping rules of [`Program::validate`]: pattern bodies see the
//! enclosing scope plus their parameters, `multiFold` update locations see
//! the index and `pre` bindings but *not* the accumulator parameter, and
//! combine lambdas see only the outer scope plus their own operands.
//! Types are inferred bottom-up with [`pphw_ir::infer`]; every pattern
//! statement and clause records its byte span under the same pattern-path
//! convention the verifier uses, so downstream diagnostics can point back
//! into the source text.

use std::collections::{BTreeSet, HashMap};

use pphw_ir::block::{Block, CopyOp, GuardedItem, Op, SliceDim, SliceOp, Stmt};
use pphw_ir::builder::{region_type, slice_result_type};
use pphw_ir::expr::{Expr, Lit};
use pphw_ir::infer::infer_scalar_type;
use pphw_ir::pattern::{
    AccDef, AccUpdate, FlatMapPat, GbfBody, GroupByFoldPat, Init, Lambda, MapPat, MultiFoldPat,
    Pattern,
};
use pphw_ir::program::Program;
use pphw_ir::size::Size;
use pphw_ir::span::{SourceMap, Span};
use pphw_ir::types::{DType, ScalarType, Sym, SymTable, Type};

use crate::ast::{
    Name, PAccDecl, PBody, PCombine, PDim, PExpr, PExprKind, PLit, PProgram, PRhs, PScalar, PSize,
    PStmt, PType, PUpdate, PVvItem,
};
use crate::codes;
use crate::{ParseError, ParseOutput};

/// Lowers a parse tree to IR. All diagnostics are collected; `Err` is
/// returned if any were produced.
pub fn lower(ast: &PProgram, file: &str) -> Result<ParseOutput, Vec<ParseError>> {
    let mut lo = Lowerer {
        syms: SymTable::new(),
        scopes: vec![HashMap::new()],
        size_vars: BTreeSet::new(),
        errors: Vec::new(),
        map: SourceMap::new(file),
    };
    let program = lo.program(ast);
    if lo.errors.is_empty() {
        Ok(ParseOutput {
            program,
            source_map: lo.map,
        })
    } else {
        Err(lo.errors)
    }
}

type LResult<T> = Result<T, ()>;

struct Lowerer {
    syms: SymTable,
    /// Innermost scope last; name resolution walks back to front.
    scopes: Vec<HashMap<String, Sym>>,
    size_vars: BTreeSet<String>,
    errors: Vec<ParseError>,
    map: SourceMap,
}

impl Lowerer {
    fn error(&mut self, code: &'static str, msg: impl Into<String>, span: Span) {
        self.errors.push(ParseError::new(code, msg, span));
    }

    fn lookup(&mut self, name: &Name) -> LResult<Sym> {
        for frame in self.scopes.iter().rev() {
            if let Some(s) = frame.get(&name.text) {
                return Ok(*s);
            }
        }
        self.error(
            codes::UNDEFINED_NAME,
            format!("`{}` is not in scope", name.text),
            name.span,
        );
        Err(())
    }

    /// Mints a symbol named after `name` and binds it in the innermost
    /// scope. Rebinding a name within the same scope is an error (outer
    /// names may be shadowed).
    fn bind(&mut self, name: &Name, ty: Type) -> Sym {
        let sym = self.syms.fresh(name.text.clone(), ty);
        #[allow(clippy::unwrap_used)] // the lowerer always keeps one frame
        let frame = self.scopes.last_mut().unwrap();
        if frame.insert(name.text.clone(), sym).is_some() {
            self.errors.push(ParseError::new(
                codes::DUPLICATE,
                format!("`{}` is bound twice in the same scope", name.text),
                name.span,
            ));
        }
        sym
    }

    fn ty(&self, sym: Sym) -> Type {
        self.syms.ty(sym).clone()
    }

    // ---- sizes and types ----

    fn size(&mut self, s: &PSize) -> LResult<Size> {
        match s {
            PSize::Const(v) => Ok(Size::Const(*v)),
            PSize::Var(name) => {
                if self.size_vars.contains(&name.text) {
                    Ok(Size::Var(name.text.clone()))
                } else {
                    self.error(
                        codes::UNDECLARED_SIZE_VAR,
                        format!(
                            "size variable `{}` is not declared by the program",
                            name.text
                        ),
                        name.span,
                    );
                    Err(())
                }
            }
            PSize::Bin(op, a, b) => {
                let a = self.size(a)?;
                let b = self.size(b)?;
                Ok(match op {
                    '+' => Size::Add(Box::new(a), Box::new(b)),
                    '-' => Size::Sub(Box::new(a), Box::new(b)),
                    '*' => Size::Mul(Box::new(a), Box::new(b)),
                    _ => Size::Div(Box::new(a), Box::new(b)),
                })
            }
        }
    }

    fn sizes(&mut self, ss: &[PSize]) -> LResult<Vec<Size>> {
        ss.iter().map(|s| self.size(s)).collect()
    }

    fn scalar(sc: &PScalar) -> ScalarType {
        match sc {
            PScalar::Prim(d) => ScalarType::Prim(*d),
            PScalar::Tuple(fs) => ScalarType::Tuple(fs.clone()),
        }
    }

    fn ptype(&mut self, t: &PType) -> LResult<Type> {
        match t {
            PType::Scalar(sc) => Ok(Type::Scalar(Self::scalar(sc))),
            PType::Tensor(sc, shape) => Ok(Type::Tensor {
                elem: Self::scalar(sc),
                shape: self.sizes(shape)?,
            }),
            PType::DynVec(sc) => Ok(Type::DynVec {
                elem: Self::scalar(sc),
            }),
            PType::Dict(key, value) => Ok(Type::Dict {
                key: Self::scalar(key),
                value: Box::new(self.ptype(value)?),
            }),
        }
    }

    fn lit(l: PLit) -> Lit {
        match l {
            PLit::F32(v) => Lit::F32(v),
            PLit::I32(v) => Lit::I32(v),
            PLit::Bool(v) => Lit::Bool(v),
        }
    }

    // ---- expressions ----

    fn expr(&mut self, e: &PExpr) -> LResult<Expr> {
        match &e.kind {
            PExprKind::Lit(l) => Ok(Expr::Lit(Self::lit(*l))),
            PExprKind::Var(name) => {
                let sym = self.lookup(name)?;
                Ok(Expr::Var(sym))
            }
            PExprKind::SizeOf(s) => Ok(Expr::SizeOf(self.size(s)?)),
            PExprKind::Un(op, a) => Ok(Expr::Un(*op, Box::new(self.expr(a)?))),
            PExprKind::Bin(op, a, b) => Ok(Expr::Bin(
                *op,
                Box::new(self.expr(a)?),
                Box::new(self.expr(b)?),
            )),
            PExprKind::Select(c, t, f) => Ok(Expr::Select {
                cond: Box::new(self.expr(c)?),
                if_true: Box::new(self.expr(t)?),
                if_false: Box::new(self.expr(f)?),
            }),
            PExprKind::Tuple(items) => {
                let items: LResult<Vec<Expr>> = items.iter().map(|i| self.expr(i)).collect();
                Ok(Expr::Tuple(items?))
            }
            PExprKind::Field(a, i) => Ok(Expr::Field(Box::new(self.expr(a)?), *i)),
            PExprKind::Read(name, args) => {
                let sym = self.lookup(name)?;
                let expected = match self.syms.ty(sym) {
                    Type::Tensor { shape, .. } => shape.len(),
                    Type::DynVec { .. } => 1,
                    other => {
                        let msg = format!("`{}` of type {other} cannot be indexed", name.text);
                        self.error(codes::TYPE_ERROR, msg, name.span);
                        return Err(());
                    }
                };
                if args.len() != expected {
                    self.error(
                        codes::ARITY,
                        format!(
                            "`{}` has rank {expected} but is indexed with {} expression(s)",
                            name.text,
                            args.len()
                        ),
                        e.span,
                    );
                    return Err(());
                }
                let index: LResult<Vec<Expr>> = args.iter().map(|a| self.expr(a)).collect();
                Ok(Expr::Read {
                    tensor: sym,
                    index: index?,
                })
            }
        }
    }

    /// Lowers an expression and infers its scalar type.
    fn typed_expr(&mut self, e: &PExpr) -> LResult<(Expr, ScalarType)> {
        let ex = self.expr(e)?;
        match infer_scalar_type(&ex, &self.syms) {
            Ok(st) => Ok((ex, st)),
            Err(err) => {
                self.error(codes::TYPE_ERROR, err.to_string(), e.span);
                Err(())
            }
        }
    }

    // ---- bodies ----

    /// Lowers a body's statements and yields into a [`Block`] using the
    /// *current* scope chain (the caller pushes parameter frames).
    /// A non-identifier `yield` expression is sealed into a fresh binding
    /// named `seal`.
    fn body(&mut self, b: &PBody, path: &str, seal: &str) -> Block {
        let mut blk = Block::new();
        for stmt in &b.stmts {
            let _ = self.stmt(stmt, path, &mut blk);
        }
        for y in &b.yields {
            let sym = match &y.kind {
                PExprKind::Var(name) => self.lookup(name),
                _ => self.typed_expr(y).map(|(ex, st)| {
                    let sym = self.syms.fresh(seal, Type::Scalar(st));
                    blk.push(sym, Op::Expr(ex));
                    sym
                }),
            };
            if let Ok(sym) = sym {
                blk.result.push(sym);
            }
        }
        blk
    }

    /// `{ params-frame; body }` — pushes a scope frame, binds params,
    /// lowers the body, pops the frame.
    fn scoped_body(
        &mut self,
        params: &[(Name, Type)],
        b: &PBody,
        path: &str,
        seal: &str,
    ) -> (Vec<Sym>, Block) {
        self.scopes.push(HashMap::new());
        let syms: Vec<Sym> = params
            .iter()
            .map(|(n, t)| self.bind(n, t.clone()))
            .collect();
        let blk = self.body(b, path, seal);
        self.scopes.pop();
        (syms, blk)
    }

    /// The body of a map/fold/flatMap must yield exactly one value. When
    /// lowering the body already reported errors, a short result list is
    /// their cascade, not a new defect — fail without a second report.
    fn single_result(&mut self, blk: &Block, what: &str, span: Span) -> LResult<Sym> {
        if blk.result.len() == 1 {
            Ok(blk.result[0])
        } else {
            if !blk.result.is_empty() || self.errors.is_empty() {
                self.error(
                    codes::ARITY,
                    format!(
                        "{what} must yield exactly one value, got {}",
                        blk.result.len()
                    ),
                    span,
                );
            }
            Err(())
        }
    }

    // ---- statements ----

    /// Lowers one statement into `out`. The statement's path is
    /// `{path}/{first-lhs}[{index}]` following the verifier convention.
    fn stmt(&mut self, s: &PStmt, path: &str, out: &mut Block) -> LResult<()> {
        let Some(first) = s.lhs.first() else {
            self.error(codes::ARITY, "statement binds no names", s.span);
            return Err(());
        };
        let spath = format!("{path}/{}[{}]", first.text, out.stmts.len());
        self.map.record(&spath, s.span);
        let Ok((op, tys)) = self.rhs(&s.rhs, &spath, s.span) else {
            // The right-hand side already reported; bind the names anyway
            // (as poison scalars) so later uses don't cascade into
            // spurious not-in-scope errors. The program is discarded once
            // any error exists, so the bogus types never escape.
            for n in &s.lhs {
                let _ = self.bind(n, Type::Scalar(ScalarType::Prim(DType::F32)));
            }
            return Err(());
        };
        if s.lhs.len() != tys.len() {
            self.error(
                codes::ARITY,
                format!(
                    "statement binds {} name(s) but the right-hand side produces {}",
                    s.lhs.len(),
                    tys.len()
                ),
                s.span,
            );
            return Err(());
        }
        let syms: Vec<Sym> = s
            .lhs
            .iter()
            .zip(tys)
            .map(|(n, t)| self.bind(n, t))
            .collect();
        out.stmts.push(Stmt { syms, op });
        Ok(())
    }

    /// Lowers a right-hand side to an op plus one result type per bound
    /// symbol.
    fn rhs(&mut self, rhs: &PRhs, path: &str, span: Span) -> LResult<(Op, Vec<Type>)> {
        match rhs {
            PRhs::Expr(e) => {
                let (ex, st) = self.typed_expr(e)?;
                Ok((Op::Expr(ex), vec![Type::Scalar(st)]))
            }
            PRhs::SliceCopy {
                tensor,
                dims,
                is_copy,
                reuse,
            } => self.slice_copy(tensor, dims, *is_copy, *reuse, span),
            PRhs::VarVec(items) => self.varvec(items, span),
            PRhs::Map {
                domain,
                params,
                body,
            } => self.map_rhs(domain, params, body, path, span),
            PRhs::MultiFold {
                domain,
                accs,
                idx,
                pre,
                updates,
                combines,
            } => self.multifold(
                domain,
                accs,
                idx,
                pre.as_ref(),
                updates,
                combines,
                path,
                span,
            ),
            PRhs::Fold {
                domain,
                acc,
                idx,
                param,
                body,
                combine,
            } => self.fold(domain, acc, idx, param, body, combine, path),
            PRhs::FlatMap {
                domain,
                param,
                body,
            } => self.flatmap(domain, param, body, path),
            PRhs::GroupByFold {
                domain,
                acc,
                idx,
                pre,
                element,
                merge,
                combine,
            } => self.gbf(
                domain,
                acc,
                idx,
                pre.as_ref(),
                element.as_ref(),
                merge.as_ref(),
                combine,
                path,
            ),
        }
    }

    fn slice_copy(
        &mut self,
        tensor: &Name,
        dims: &[PDim],
        is_copy: bool,
        reuse: u32,
        span: Span,
    ) -> LResult<(Op, Vec<Type>)> {
        let sym = self.lookup(tensor)?;
        let ty = self.ty(sym);
        let Type::Tensor { shape, .. } = &ty else {
            self.error(
                codes::TYPE_ERROR,
                format!("cannot slice `{}` of non-tensor type {ty}", tensor.text),
                tensor.span,
            );
            return Err(());
        };
        if dims.len() != shape.len() {
            self.error(
                codes::ARITY,
                format!(
                    "`{}` has rank {} but the slice gives {} dimension(s)",
                    tensor.text,
                    shape.len(),
                    dims.len()
                ),
                span,
            );
            return Err(());
        }
        let mut sdims = Vec::new();
        for d in dims {
            sdims.push(match d {
                PDim::Full => SliceDim::Full,
                PDim::Point(e) => SliceDim::Point(self.expr(e)?),
                PDim::Window(start, len) => SliceDim::Window {
                    start: self.expr(start)?,
                    len: self.size(len)?,
                },
            });
        }
        // Arity and tensor-ness were checked above, so this cannot panic.
        let rty = slice_result_type(&ty, &sdims);
        let op = if is_copy {
            Op::Copy(CopyOp {
                tensor: sym,
                dims: sdims,
                reuse,
            })
        } else {
            Op::Slice(SliceOp {
                tensor: sym,
                dims: sdims,
            })
        };
        Ok((op, vec![rty]))
    }

    fn varvec(&mut self, items: &[PVvItem], span: Span) -> LResult<(Op, Vec<Type>)> {
        if items.is_empty() {
            self.error(
                codes::ARITY,
                "cannot infer the element type of an empty vector",
                span,
            );
            return Err(());
        }
        let mut lowered = Vec::new();
        let mut elem = None;
        for item in items {
            let guard = match &item.guard {
                Some(g) => Some(self.expr(g)?),
                None => None,
            };
            let (value, st) = self.typed_expr(&item.value)?;
            if elem.is_none() {
                elem = Some(st);
            }
            lowered.push(GuardedItem { guard, value });
        }
        let Some(elem) = elem else { return Err(()) };
        Ok((Op::VarVec(lowered), vec![Type::DynVec { elem }]))
    }

    fn map_rhs(
        &mut self,
        domain: &[PSize],
        params: &[Name],
        body: &PBody,
        path: &str,
        span: Span,
    ) -> LResult<(Op, Vec<Type>)> {
        let domain = self.sizes(domain)?;
        if params.len() != domain.len() {
            self.error(
                codes::ARITY,
                format!(
                    "map over {} dimension(s) needs {} index parameter(s), got {}",
                    domain.len(),
                    domain.len(),
                    params.len()
                ),
                span,
            );
            return Err(());
        }
        let bpath = format!("{path}/body");
        self.map.record(&bpath, body.span);
        let ps: Vec<(Name, Type)> = params.iter().map(|n| (n.clone(), Type::i32())).collect();
        let (psyms, blk) = self.scoped_body(&ps, body, &bpath, "v");
        let result = self.single_result(&blk, "map body", body.span)?;
        let out_ty = match self.ty(result) {
            Type::Scalar(st) => Type::Tensor {
                elem: st,
                shape: domain.clone(),
            },
            Type::Tensor { elem, shape } => {
                let mut full = domain.clone();
                full.extend(shape);
                Type::Tensor { elem, shape: full }
            }
            other => {
                self.error(
                    codes::TYPE_ERROR,
                    format!("map body must yield a scalar or tensor, got {other}"),
                    body.span,
                );
                return Err(());
            }
        };
        Ok((
            Op::Pattern(Pattern::Map(MapPat {
                domain,
                body: Lambda::new(psyms, blk),
            })),
            vec![out_ty],
        ))
    }

    fn acc_def(&mut self, a: &PAccDecl) -> LResult<AccDef> {
        let elem = Self::scalar(&a.elem);
        if a.init.len() != elem.width() {
            self.error(
                codes::ARITY,
                format!(
                    "splat gives {} literal(s) but the element type has {} field(s)",
                    a.init.len(),
                    elem.width()
                ),
                a.span,
            );
            return Err(());
        }
        Ok(AccDef {
            name: a.name.text.clone(),
            shape: self.sizes(&a.shape)?,
            elem,
            init: Init::splat(a.init.iter().map(|l| Self::lit(*l)).collect()),
        })
    }

    /// Finds the single clause targeting accumulator `acc` by name.
    fn clause_for<'c, T>(
        &mut self,
        clauses: &'c [T],
        get_name: impl Fn(&T) -> Option<&Name>,
        acc: &Name,
        what: &str,
        span: Span,
    ) -> LResult<&'c T> {
        let mut found = None;
        for c in clauses {
            if get_name(c).map(|n| n.text.as_str()) == Some(acc.text.as_str()) {
                if found.is_some() {
                    self.error(
                        codes::DUPLICATE,
                        format!("duplicate {what} clause for accumulator `{}`", acc.text),
                        acc.span,
                    );
                    return Err(());
                }
                found = Some(c);
            }
        }
        match found {
            Some(c) => Ok(c),
            None => {
                self.error(
                    codes::ARITY,
                    format!("missing {what} clause for accumulator `{}`", acc.text),
                    span,
                );
                Err(())
            }
        }
    }

    /// Lowers one update clause against its accumulator. Must be called
    /// with the inner (idx + pre) scope active; the accumulator parameter
    /// is bound only inside the update body, and the location expressions
    /// are lowered *outside* it.
    fn update(&mut self, u: &PUpdate, acc: &AccDef, path: &str) -> LResult<AccUpdate> {
        self.map.record(path, u.span);
        // An empty extent list marks a point update (one element per
        // dimension, scalar region); otherwise the extent arity must match
        // the accumulator's rank, like the locations always must.
        if u.locs.len() != acc.shape.len()
            || !(u.shape.is_empty() || u.shape.len() == acc.shape.len())
        {
            self.error(
                codes::ARITY,
                format!(
                    "accumulator `{}` has rank {}; update gives {} location(s) and {} extent(s)",
                    acc.name,
                    acc.shape.len(),
                    u.locs.len(),
                    u.shape.len()
                ),
                u.span,
            );
            return Err(());
        }
        let loc: LResult<Vec<Expr>> = u.locs.iter().map(|e| self.expr(e)).collect();
        let loc = loc?;
        let shape = self.sizes(&u.shape)?;
        let pty = region_type(&shape, &acc.elem);
        let (psyms, body) = self.scoped_body(&[(u.param.clone(), pty)], &u.body, path, "upd");
        let result = self.single_result(&body, "update body", u.body.span)?;
        let _ = result;
        Ok(AccUpdate {
            loc,
            shape,
            acc_param: psyms[0],
            body,
        })
    }

    /// Lowers a combine lambda in the *outer* scope (callers pop the inner
    /// frame first, mirroring validation's scoping).
    fn combine_lambda(
        &mut self,
        (a, b, body): &(Name, Name, PBody),
        elem: &ScalarType,
        path: &str,
    ) -> LResult<Lambda> {
        let pty = Type::Scalar(elem.clone());
        let params = [(a.clone(), pty.clone()), (b.clone(), pty)];
        let (psyms, blk) = self.scoped_body(&params, body, path, "comb");
        self.single_result(&blk, "combine body", body.span)?;
        Ok(Lambda::new(psyms, blk))
    }

    #[allow(clippy::too_many_arguments)]
    fn multifold(
        &mut self,
        domain: &[PSize],
        accs: &[PAccDecl],
        idx: &[Name],
        pre: Option<&PBody>,
        updates: &[PUpdate],
        combines: &[PCombine],
        path: &str,
        span: Span,
    ) -> LResult<(Op, Vec<Type>)> {
        let domain = self.sizes(domain)?;
        if idx.len() != domain.len() {
            self.error(
                codes::ARITY,
                format!(
                    "multiFold over {} dimension(s) needs {} index parameter(s), got {}",
                    domain.len(),
                    domain.len(),
                    idx.len()
                ),
                span,
            );
            return Err(());
        }
        let defs: LResult<Vec<AccDef>> = accs.iter().map(|a| self.acc_def(a)).collect();
        let defs = defs?;
        // Every clause must target a declared accumulator.
        for u in updates {
            if let Some(n) = &u.acc {
                if !accs.iter().any(|a| a.name.text == n.text) {
                    self.error(
                        codes::UNDEFINED_NAME,
                        format!("update targets unknown accumulator `{}`", n.text),
                        n.span,
                    );
                    return Err(());
                }
            }
        }
        for c in combines {
            if let Some(n) = &c.acc {
                if !accs.iter().any(|a| a.name.text == n.text) {
                    self.error(
                        codes::UNDEFINED_NAME,
                        format!("combine targets unknown accumulator `{}`", n.text),
                        n.span,
                    );
                    return Err(());
                }
            }
        }

        // Inner scope: indices, then pre bindings.
        self.scopes.push(HashMap::new());
        let idx_syms: Vec<Sym> = idx.iter().map(|n| self.bind(n, Type::i32())).collect();
        let pre_blk = match pre {
            Some(p) => {
                let ppath = format!("{path}/pre");
                self.map.record(&ppath, p.span);
                self.body(p, &ppath, "v")
            }
            None => Block::new(),
        };
        let mut lowered_updates = Vec::new();
        let mut update_err = false;
        for (k, (acc, pacc)) in defs.iter().zip(accs).enumerate() {
            let upath = format!("{path}/update[{k}]");
            match self.clause_for(updates, |u| u.acc.as_ref(), &pacc.name, "update", span) {
                Ok(u) => {
                    let u = u.clone();
                    match self.update(&u, acc, &upath) {
                        Ok(l) => lowered_updates.push(l),
                        Err(()) => update_err = true,
                    }
                }
                Err(()) => update_err = true,
            }
        }
        self.scopes.pop();
        if update_err {
            return Err(());
        }

        // Combines run in the outer scope.
        let mut lowered_combines = Vec::new();
        for (k, (acc, pacc)) in defs.iter().zip(accs).enumerate() {
            let cpath = format!("{path}/combine[{k}]");
            let c = self
                .clause_for(combines, |c| c.acc.as_ref(), &pacc.name, "combine", span)?
                .clone();
            self.map.record(&cpath, c.span);
            match &c.lambda {
                Some(l) => lowered_combines.push(Some(self.combine_lambda(l, &acc.elem, &cpath)?)),
                None => lowered_combines.push(None),
            }
        }

        let out_tys: Vec<Type> = defs
            .iter()
            .map(|a| region_type(&a.shape, &a.elem))
            .collect();
        Ok((
            Op::Pattern(Pattern::MultiFold(MultiFoldPat {
                domain,
                accs: defs,
                idx: idx_syms,
                pre: pre_blk,
                updates: lowered_updates,
                combines: lowered_combines,
            })),
            out_tys,
        ))
    }

    /// `fold` sugar: one accumulator updated in full every iteration, the
    /// same desugaring the builder API applies.
    #[allow(clippy::too_many_arguments)]
    fn fold(
        &mut self,
        domain: &[PSize],
        acc: &PAccDecl,
        idx: &[Name],
        param: &Name,
        body: &PBody,
        combine: &(Name, Name, PBody),
        path: &str,
    ) -> LResult<(Op, Vec<Type>)> {
        let domain = self.sizes(domain)?;
        if idx.len() != domain.len() {
            self.error(
                codes::ARITY,
                format!(
                    "fold over {} dimension(s) needs {} index parameter(s), got {}",
                    domain.len(),
                    domain.len(),
                    idx.len()
                ),
                acc.span,
            );
            return Err(());
        }
        let def = self.acc_def(acc)?;

        self.scopes.push(HashMap::new());
        let idx_syms: Vec<Sym> = idx.iter().map(|n| self.bind(n, Type::i32())).collect();
        let upath = format!("{path}/update[0]");
        self.map.record(&upath, body.span);
        let pty = region_type(&def.shape, &def.elem);
        let (psyms, ubody) = self.scoped_body(&[(param.clone(), pty)], body, &upath, "upd");
        let res = self.single_result(&ubody, "fold body", body.span);
        self.scopes.pop();
        res?;

        let cpath = format!("{path}/combine[0]");
        self.map.record(&cpath, combine.2.span);
        let comb = self.combine_lambda(combine, &def.elem, &cpath)?;

        let out_ty = region_type(&def.shape, &def.elem);
        let update = AccUpdate {
            loc: def.shape.iter().map(|_| Expr::int(0)).collect(),
            shape: def.shape.clone(),
            acc_param: psyms[0],
            body: ubody,
        };
        Ok((
            Op::Pattern(Pattern::MultiFold(MultiFoldPat {
                domain,
                accs: vec![def],
                idx: idx_syms,
                pre: Block::new(),
                updates: vec![update],
                combines: vec![Some(comb)],
            })),
            vec![out_ty],
        ))
    }

    fn flatmap(
        &mut self,
        domain: &PSize,
        param: &Name,
        body: &PBody,
        path: &str,
    ) -> LResult<(Op, Vec<Type>)> {
        let domain = self.size(domain)?;
        let bpath = format!("{path}/body");
        self.map.record(&bpath, body.span);
        let (psyms, blk) = self.scoped_body(&[(param.clone(), Type::i32())], body, &bpath, "items");
        let result = self.single_result(&blk, "flatMap body", body.span)?;
        let elem = match self.ty(result) {
            Type::DynVec { elem } => elem,
            other => {
                self.error(
                    codes::TYPE_ERROR,
                    format!("flatMap body must yield a dynamic vector, got {other}"),
                    body.span,
                );
                return Err(());
            }
        };
        Ok((
            Op::Pattern(Pattern::FlatMap(FlatMapPat {
                domain,
                body: Lambda::new(psyms, blk),
            })),
            vec![Type::DynVec { elem }],
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn gbf(
        &mut self,
        domain: &PSize,
        acc: &PAccDecl,
        idx: &Name,
        pre: Option<&PBody>,
        element: Option<&(PExpr, PUpdate)>,
        merge: Option<&Name>,
        combine: &(Name, Name, PBody),
        path: &str,
    ) -> LResult<(Op, Vec<Type>)> {
        let domain = self.size(domain)?;
        let def = self.acc_def(acc)?;

        self.scopes.push(HashMap::new());
        let idx_sym = self.bind(idx, Type::i32());
        let pre_blk = match pre {
            Some(p) => {
                let ppath = format!("{path}/pre");
                self.map.record(&ppath, p.span);
                self.body(p, &ppath, "v")
            }
            None => Block::new(),
        };
        let body_and_key = if let Some((key, update)) = element {
            let kpath = format!("{path}/key");
            self.map.record(&kpath, key.span);
            let key_res = self.typed_expr(key);
            let upd_res = key_res.and_then(|(kexpr, kst)| {
                let upath = format!("{path}/update");
                self.update(update, &def, &upath).map(|u| {
                    (
                        GbfBody::Element {
                            key: kexpr,
                            update: u,
                        },
                        kst,
                    )
                })
            });
            upd_res
        } else if let Some(dict) = merge {
            self.map.record(format!("{path}/merge"), dict.span);
            self.lookup(dict).and_then(|sym| match self.ty(sym) {
                Type::Dict { key, .. } => Ok((GbfBody::Merge { dict: sym }, key)),
                other => {
                    self.error(
                        codes::TYPE_ERROR,
                        format!("`{}` of type {other} is not a dictionary", dict.text),
                        dict.span,
                    );
                    Err(())
                }
            })
        } else {
            Err(())
        };
        self.scopes.pop();
        let (body, key_ty) = body_and_key?;

        let cpath = format!("{path}/combine");
        self.map.record(&cpath, combine.2.span);
        let comb = self.combine_lambda(combine, &def.elem, &cpath)?;

        let value_ty = region_type(&def.shape, &def.elem);
        let out_ty = Type::Dict {
            key: key_ty,
            value: Box::new(value_ty),
        };
        Ok((
            Op::Pattern(Pattern::GroupByFold(GroupByFoldPat {
                domain,
                acc: def,
                idx: idx_sym,
                pre: pre_blk,
                body,
                combine: comb,
            })),
            vec![out_ty],
        ))
    }

    // ---- program ----

    fn program(&mut self, ast: &PProgram) -> Program {
        self.map.record(ast.name.text.clone(), ast.name.span);
        for sv in &ast.size_vars {
            if !self.size_vars.insert(sv.text.clone()) {
                self.error(
                    codes::DUPLICATE,
                    format!("size variable `{}` declared twice", sv.text),
                    sv.span,
                );
            }
        }
        let mut inputs = Vec::new();
        for input in &ast.inputs {
            if let Ok(ty) = self.ptype(&input.ty) {
                inputs.push(self.bind(&input.name, ty));
            }
        }
        let mut body = Block::new();
        let root = ast.name.text.clone();
        for stmt in &ast.stmts {
            let _ = self.stmt(stmt, &root, &mut body);
        }
        for ret in &ast.returns {
            if let Ok(sym) = self.lookup(ret) {
                body.result.push(sym);
            }
        }
        if body.result.is_empty() && self.errors.is_empty() {
            self.error(
                codes::PROGRAM_STRUCTURE,
                "program returns nothing",
                ast.name.span,
            );
        }
        Program::new(
            ast.name.text.clone(),
            ast.size_vars.iter().map(|n| n.text.clone()).collect(),
            inputs,
            body,
            std::mem::take(&mut self.syms),
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use crate::parse_program;
    use pphw_ir::types::Type;

    const SUM: &str = "program sum(d) {\n  input x: Float[d]\n  let s = multiFold(d) {\n    acc s: Float = splat(0.0)\n    (i) =>\n    update s @ () [] (acc) {\n      let u = (acc + x(i))\n      yield u\n    }\n    combine s (a, b) {\n      let c = (a + b)\n      yield c\n    }\n  }\n  return (s)\n}\n";

    #[test]
    fn lowers_scalar_fold() {
        let out = parse_program(SUM, "sum.ppl").expect("parses");
        let p = &out.program;
        assert_eq!(p.name, "sum");
        assert_eq!(p.outputs().len(), 1);
        assert_eq!(p.ty(p.outputs()[0]), &Type::f32());
        assert!(p.validate().is_ok());
        // The statement and its clauses landed in the source map.
        assert!(out.source_map.get("sum/s[0]").is_some());
        assert!(out.source_map.get("sum/s[0]/update[0]").is_some());
        assert!(out.source_map.get("sum/s[0]/combine[0]").is_some());
    }

    #[test]
    fn undefined_name_is_reported_with_span() {
        let src = "program p(d) {\n  input x: Float[d]\n  let y = (x(0) + zz)\n  return (y)\n}\n";
        let errs = parse_program(src, "p.ppl").expect_err("should fail");
        assert!(errs.iter().any(|e| e.code == crate::codes::UNDEFINED_NAME));
        let e = errs
            .iter()
            .find(|e| e.code == crate::codes::UNDEFINED_NAME)
            .unwrap();
        assert_eq!(&src[e.span.start..e.span.end], "zz");
        let rendered = e.render(src, "p.ppl");
        assert!(rendered.starts_with("p.ppl:3:"), "got: {rendered}");
        assert!(rendered.contains("error[PPLP003]"));
        assert!(rendered.contains('^'));
    }

    #[test]
    fn undeclared_size_var_is_reported() {
        let src = "program p(d) {\n  input x: Float[d]\n  let y = map(q) { (i) =>\n    yield i\n  }\n  return (y)\n}\n";
        let errs = parse_program(src, "p.ppl").expect_err("should fail");
        assert!(errs
            .iter()
            .any(|e| e.code == crate::codes::UNDECLARED_SIZE_VAR));
    }

    #[test]
    fn combine_cannot_see_fold_locals() {
        // `i` is the fold index; combine lambdas only see the outer scope.
        let src = "program p(d) {\n  input x: Float[d]\n  let s = multiFold(d) {\n    acc s: Float = splat(0.0)\n    (i) =>\n    update s @ () [] (acc) {\n      let u = (acc + x(i))\n      yield u\n    }\n    combine s (a, b) {\n      let c = (a + i)\n      yield c\n    }\n  }\n  return (s)\n}\n";
        let errs = parse_program(src, "p.ppl").expect_err("should fail");
        assert!(errs
            .iter()
            .any(|e| e.code == crate::codes::UNDEFINED_NAME && e.message.contains('i')));
    }

    #[test]
    fn fold_sugar_desugars_to_full_multifold() {
        let src = "program p(d) {\n  input x: Float[d]\n  let s = fold(d) {\n    acc s: Float = splat(0.0)\n    (i) (acc) =>\n      let u = (acc + x(i))\n      yield u\n    combine (a, b) {\n      let c = (a + b)\n      yield c\n    }\n  }\n  return (s)\n}\n";
        let out = parse_program(src, "p.ppl").expect("parses");
        let p = &out.program;
        let op = &p.body.stmts[0].op;
        let pat = op.as_pattern().expect("is a pattern");
        match pat {
            pphw_ir::pattern::Pattern::MultiFold(mf) => assert!(mf.is_fold()),
            other => panic!("expected multiFold, got {}", other.kind()),
        }
    }

    #[test]
    fn type_error_points_at_expression() {
        let src =
            "program p(d) {\n  input x: Float[d]\n  let y = (if ((x(0) < 0.0)) 1.0 else (1, 2.0))\n  return (y)\n}\n";
        let errs = parse_program(src, "p.ppl").expect_err("should fail");
        assert!(errs.iter().any(|e| e.code == crate::codes::TYPE_ERROR));
    }
}
