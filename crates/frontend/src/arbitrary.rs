//! Seeded generation of random — but valid — PPL programs.
//!
//! Used by the round-trip property suite: programs built here go through
//! `emit_program` → `parse_program` and must come back structurally
//! equal. Generation is deterministic in the seed (splitmix64) so
//! failures reproduce exactly; constructs are drawn from the full builder
//! surface (maps over 1-D and 2-D domains, scalar folds, filters,
//! group-by-folds) with random expression trees.

use pphw_ir::builder::ProgramBuilder;
use pphw_ir::expr::{BinOp, Expr, UnOp};
use pphw_ir::pattern::Init;
use pphw_ir::program::Program;
use pphw_ir::types::{DType, ScalarType};

/// Small deterministic RNG (splitmix64).
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` ≥ 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A small "nice" float (quarter-integer in `[-25, 25]`).
    pub fn small_f32(&mut self) -> f32 {
        (self.below(201) as f32 - 100.0) / 4.0
    }
}

/// A random float expression tree over the given leaf reads.
fn rand_expr(r: &mut Rng, leaves: &[Expr], depth: u32) -> Expr {
    let leaf = |r: &mut Rng| {
        if leaves.is_empty() || r.below(4) == 0 {
            Expr::f32(r.small_f32())
        } else {
            leaves[r.below(leaves.len() as u64) as usize].clone()
        }
    };
    if depth == 0 {
        return leaf(r);
    }
    match r.below(8) {
        0 | 1 => Expr::Bin(
            BinOp::Add,
            Box::new(rand_expr(r, leaves, depth - 1)),
            Box::new(rand_expr(r, leaves, depth - 1)),
        ),
        2 => Expr::Bin(
            BinOp::Mul,
            Box::new(rand_expr(r, leaves, depth - 1)),
            Box::new(rand_expr(r, leaves, depth - 1)),
        ),
        3 => Expr::Bin(
            BinOp::Min,
            Box::new(rand_expr(r, leaves, depth - 1)),
            Box::new(rand_expr(r, leaves, depth - 1)),
        ),
        4 => Expr::Bin(
            BinOp::Max,
            Box::new(rand_expr(r, leaves, depth - 1)),
            Box::new(rand_expr(r, leaves, depth - 1)),
        ),
        5 => Expr::Un(UnOp::Abs, Box::new(rand_expr(r, leaves, depth - 1))),
        6 => Expr::Un(UnOp::Square, Box::new(rand_expr(r, leaves, depth - 1))),
        _ => Expr::select(
            leaf(r).lt(Expr::f32(r.small_f32())),
            rand_expr(r, leaves, depth - 1),
            rand_expr(r, leaves, depth - 1),
        ),
    }
}

/// Builds a random valid program from `seed`. The result always passes
/// [`Program::validate`].
pub fn random_program(seed: u64) -> Program {
    let mut r = Rng::new(seed);
    let mut b = ProgramBuilder::new(format!("rand{}", seed % 997));
    let d = b.size("d");
    let m = b.size("m");
    let x = b.input("x", DType::F32, vec![d.clone()]);
    let y = b.input("y", DType::F32, vec![d.clone()]);
    let w = b.input("w", DType::F32, vec![m.clone(), d.clone()]);

    let mut outs = Vec::new();
    let count = 1 + r.below(3);
    for k in 0..count {
        match r.below(5) {
            0 => {
                // 1-D elementwise map.
                let depth = 1 + (r.below(3) as u32);
                let sym = b.with_ctx(|c| {
                    c.map(vec![d.clone()], |c2, idx| {
                        let i = idx[0];
                        let leaves = vec![
                            c2.read(x, vec![Expr::Var(i)]),
                            c2.read(y, vec![Expr::Var(i)]),
                        ];
                        rand_expr(&mut r, &leaves, depth)
                    })
                });
                outs.push(sym);
            }
            1 => {
                // Scalar reduction.
                let depth = 1 + (r.below(2) as u32);
                let sym = b.fold(
                    &format!("s{k}"),
                    vec![d.clone()],
                    vec![],
                    ScalarType::Prim(DType::F32),
                    Init::zeros(),
                    |c2, idx, acc| {
                        let i = idx[0];
                        let leaves = vec![c2.read(x, vec![Expr::Var(i)])];
                        Expr::Var(acc).add(rand_expr(&mut r, &leaves, depth))
                    },
                    |_c2, a, bb| Expr::Var(a).add(Expr::Var(bb)),
                );
                outs.push(sym);
            }
            2 => {
                // Filter (flatMap of guarded items).
                let cutoff = r.small_f32();
                let sym = b.filter(&format!("f{k}"), d.clone(), |c2, i| {
                    let xi = c2.read(x, vec![Expr::Var(i)]);
                    let yi = c2.read(y, vec![Expr::Var(i)]);
                    (xi.lt(Expr::f32(cutoff)), yi)
                });
                outs.push(sym);
            }
            3 => {
                // Keyed histogram.
                let sym = b.group_by_fold(
                    &format!("g{k}"),
                    d.clone(),
                    ScalarType::Prim(DType::F32),
                    Init::zeros(),
                    |c2, i| {
                        let key = Expr::Un(UnOp::ToI32, Box::new(c2.read(x, vec![Expr::Var(i)])));
                        let value = c2.read(y, vec![Expr::Var(i)]);
                        (key, value)
                    },
                    |a, bb| a.add(bb),
                );
                outs.push(sym);
            }
            _ => {
                // 2-D map over the matrix input.
                let depth = 1 + (r.below(2) as u32);
                let sym = b.with_ctx(|c| {
                    c.map(vec![m.clone(), d.clone()], |c2, idx| {
                        let (i, j) = (idx[0], idx[1]);
                        let leaves = vec![
                            c2.read(w, vec![Expr::Var(i), Expr::Var(j)]),
                            c2.read(x, vec![Expr::Var(j)]),
                        ];
                        rand_expr(&mut r, &leaves, depth)
                    })
                });
                outs.push(sym);
            }
        }
    }
    b.finish(outs)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use pphw_ir::pretty::emit_program;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let a = emit_program(&random_program(seed));
            let b = emit_program(&random_program(seed));
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn generated_programs_validate() {
        for seed in 0..32u64 {
            let p = random_program(seed);
            assert!(p.validate().is_ok(), "seed {seed} invalid");
        }
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let a = emit_program(&random_program(1));
        let b = emit_program(&random_program(2));
        assert_ne!(a, b);
    }
}
