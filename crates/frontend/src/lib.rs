//! Textual frontend for the PPL parallel-pattern language.
//!
//! This crate turns `.ppl` source text into the [`pphw_ir`] program
//! representation used by the rest of the pipeline:
//!
//! 1. [`lexer`] tokenizes the source (never panics; bad bytes become
//!    diagnostics),
//! 2. [`parser`] builds a parse tree with statement-level error recovery,
//! 3. [`lower`] resolves names, infers types, and emits a
//!    [`pphw_ir::program::Program`] plus a [`pphw_ir::span::SourceMap`]
//!    relating verifier pattern paths back to byte spans.
//!
//! The surface syntax is exactly what [`pphw_ir::pretty::emit_program`]
//! prints, so `parse(pretty(p))` is structurally equal to `p` and
//! `pretty(parse(text))` is a canonical form of `text`.
//!
//! The single entry point is [`parse_program`]; everything it reports goes
//! through [`ParseError`], whose `PPLP0xx` codes are listed in [`codes`].

pub mod arbitrary;
pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use pphw_ir::program::Program;
use pphw_ir::span::{caret_snippet, line_col, SourceMap, Span};

/// Stable diagnostic codes for frontend errors, in the `PPLP0xx` space
/// (the verifier owns `PPHW0xx`).
pub mod codes {
    /// A character or literal the lexer cannot tokenize.
    pub const INVALID_TOKEN: &str = "PPLP001";
    /// The parser found a token the grammar does not allow here.
    pub const UNEXPECTED_TOKEN: &str = "PPLP002";
    /// A name is used but not in scope.
    pub const UNDEFINED_NAME: &str = "PPLP003";
    /// A name is declared (or a clause is given) twice.
    pub const DUPLICATE: &str = "PPLP004";
    /// An expression does not type-check.
    pub const TYPE_ERROR: &str = "PPLP005";
    /// Wrong arity, rank, or shape.
    pub const ARITY: &str = "PPLP006";
    /// A literal is malformed or out of range.
    pub const BAD_LITERAL: &str = "PPLP007";
    /// A size expression names an undeclared size variable.
    pub const UNDECLARED_SIZE_VAR: &str = "PPLP008";
    /// The lowered program failed IR validation (frontend bug guard).
    pub const PROGRAM_STRUCTURE: &str = "PPLP009";
}

/// One frontend diagnostic: a stable code, a message, and the byte span
/// of the offending source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// `PPLP0xx` code (see [`codes`]).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Byte span in the source text.
    pub span: Span,
}

impl ParseError {
    /// Creates a diagnostic.
    pub fn new(code: &'static str, message: impl Into<String>, span: Span) -> Self {
        ParseError {
            code,
            message: message.into(),
            span,
        }
    }

    /// Renders as `file:line:col: error[CODE]: message` with a caret
    /// snippet underneath.
    pub fn render(&self, src: &str, file: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        let mut out = format!(
            "{file}:{line}:{col}: error[{}]: {}",
            self.code, self.message
        );
        let snippet = caret_snippet(src, self.span);
        if !snippet.is_empty() {
            out.push('\n');
            out.push_str(&snippet);
        }
        out
    }
}

/// Result of a successful parse: the IR program and the pattern-path →
/// byte-span side table.
#[derive(Debug)]
pub struct ParseOutput {
    /// The lowered program.
    pub program: Program,
    /// Byte spans keyed by verifier pattern paths (root = program name).
    pub source_map: SourceMap,
}

/// Parses, lowers, and validates `.ppl` source text.
///
/// `file` is recorded in the returned [`SourceMap`] and used when
/// rendering diagnostics. On failure every collected diagnostic is
/// returned; the list is never empty.
pub fn parse_program(src: &str, file: &str) -> Result<ParseOutput, Vec<ParseError>> {
    let mut errors = Vec::new();
    let toks = lexer::lex(src, &mut errors);
    let ast = parser::parse(&toks, &mut errors);
    if !errors.is_empty() {
        return Err(errors);
    }
    let Some(ast) = ast else {
        return Err(vec![ParseError::new(
            codes::PROGRAM_STRUCTURE,
            "no program found",
            Span::new(0, src.len().min(1)),
        )]);
    };
    let out = lower::lower(&ast, file)?;
    // Safety net: the lowered IR must satisfy the same invariants builder
    // programs do. A failure here is a frontend bug, not a user error,
    // but it must surface as a diagnostic rather than a panic downstream.
    if let Err(e) = out.program.validate() {
        return Err(vec![ParseError::new(
            codes::PROGRAM_STRUCTURE,
            format!("lowered program failed validation: {e}"),
            ast.name.span,
        )]);
    }
    Ok(out)
}
