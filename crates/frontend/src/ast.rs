//! Parse tree of the textual PPL surface syntax.
//!
//! The AST mirrors the grammar, not the IR: names are strings with spans,
//! `fold` sugar is still a distinct node, and nothing is typed yet.
//! Lowering ([`crate::lower`]) resolves names, infers types, and produces
//! the [`pphw_ir`] program plus the path→span side table.

use pphw_ir::span::Span;
use pphw_ir::types::DType;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Name {
    /// Identifier text, verbatim.
    pub text: String,
    /// Where it appears.
    pub span: Span,
}

/// A whole `program … { … }`.
#[derive(Debug, Clone, PartialEq)]
pub struct PProgram {
    /// Program name.
    pub name: Name,
    /// Declared size variables, in order.
    pub size_vars: Vec<Name>,
    /// Input declarations, in order.
    pub inputs: Vec<PInput>,
    /// Top-level statements.
    pub stmts: Vec<PStmt>,
    /// `return (…)` symbols.
    pub returns: Vec<Name>,
}

/// `input x: Float[d]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PInput {
    /// Input name.
    pub name: Name,
    /// Declared type.
    pub ty: PType,
    /// Span of the whole declaration.
    pub span: Span,
}

/// Scalar element types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PScalar {
    /// `Float` / `Int` / `Bool`.
    Prim(DType),
    /// `(Float, Int)`.
    Tuple(Vec<DType>),
}

/// Surface types.
#[derive(Debug, Clone, PartialEq)]
pub enum PType {
    /// A scalar.
    Scalar(PScalar),
    /// `Float[n, d]`.
    Tensor(PScalar, Vec<PSize>),
    /// `Float[?]`.
    DynVec(PScalar),
    /// `Dict[Int -> Float[d]]`.
    Dict(PScalar, Box<PType>),
}

/// Symbolic size expressions (structure-preserving; never simplified).
#[derive(Debug, Clone, PartialEq)]
pub enum PSize {
    /// Integer constant.
    Const(i64),
    /// Named dimension.
    Var(Name),
    /// `a + b`, `a - b`, `a * b`, `a / b`.
    Bin(char, Box<PSize>, Box<PSize>),
}

/// A `let` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct PStmt {
    /// Bound names (`let x` or `let (a, b)`).
    pub lhs: Vec<Name>,
    /// Right-hand side.
    pub rhs: PRhs,
    /// Span of the whole statement.
    pub span: Span,
}

/// A block body: statements then an optional `yield`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PBody {
    /// Statements, in order.
    pub stmts: Vec<PStmt>,
    /// `yield` expressions (empty when the block has no results).
    pub yields: Vec<PExpr>,
    /// Span of the whole body.
    pub span: Span,
}

/// One guarded item of a `[ … ]` vector construction.
#[derive(Debug, Clone, PartialEq)]
pub struct PVvItem {
    /// Optional `if (…)` guard.
    pub guard: Option<PExpr>,
    /// The element value.
    pub value: PExpr,
}

/// One dimension of a slice/copy spec.
#[derive(Debug, Clone, PartialEq)]
pub enum PDim {
    /// `*`
    Full,
    /// A point index.
    Point(PExpr),
    /// `start :+ len`
    Window(PExpr, PSize),
}

/// `acc name: Float[k, d] = splat(0.0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PAccDecl {
    /// Accumulator name.
    pub name: Name,
    /// Element scalar type.
    pub elem: PScalar,
    /// Accumulator shape (empty for scalars).
    pub shape: Vec<PSize>,
    /// `splat(…)` literals.
    pub init: Vec<PLit>,
    /// Span of the declaration.
    pub span: Span,
}

/// `update <acc> @ (locs) [shape] (param) { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct PUpdate {
    /// Target accumulator name (`None` in `groupByFold`, which has one).
    pub acc: Option<Name>,
    /// Region offset expressions.
    pub locs: Vec<PExpr>,
    /// Region shape.
    pub shape: Vec<PSize>,
    /// Region parameter name.
    pub param: Name,
    /// Update body.
    pub body: PBody,
    /// Span of the clause.
    pub span: Span,
}

/// `combine <acc> (a, b) { body }` or `combine <acc> _`.
#[derive(Debug, Clone, PartialEq)]
pub struct PCombine {
    /// Target accumulator name (`None` in `groupByFold`).
    pub acc: Option<Name>,
    /// `Some((a, b, body))` for a lambda, `None` for `_`.
    pub lambda: Option<(Name, Name, PBody)>,
    /// Span of the clause.
    pub span: Span,
}

/// Right-hand sides of `let`.
// Parse trees are short-lived and never stored in bulk; boxing the big
// pattern variants would only complicate the parser and lowerer.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PRhs {
    /// A scalar expression.
    Expr(PExpr),
    /// `t.slice(dims)` / `t.copy(dims) [reuse N]`.
    SliceCopy {
        /// Source tensor name.
        tensor: Name,
        /// Dimension specs.
        dims: Vec<PDim>,
        /// `true` for `copy`.
        is_copy: bool,
        /// Reuse factor (`1` unless `reuse N` present; copies only).
        reuse: u32,
    },
    /// `[item, if (g) item, …]`.
    VarVec(Vec<PVvItem>),
    /// `map(sizes) { (i, j) => body }`.
    Map {
        /// Iteration domain.
        domain: Vec<PSize>,
        /// Index parameter names.
        params: Vec<Name>,
        /// Body.
        body: PBody,
    },
    /// `multiFold(sizes) { accs… (idx) => [pre] updates… combines… }`.
    MultiFold {
        /// Iteration domain.
        domain: Vec<PSize>,
        /// Accumulator declarations.
        accs: Vec<PAccDecl>,
        /// Index parameter names.
        idx: Vec<Name>,
        /// Optional `pre { … }` block.
        pre: Option<PBody>,
        /// Update clauses (source order).
        updates: Vec<PUpdate>,
        /// Combine clauses (source order).
        combines: Vec<PCombine>,
    },
    /// `fold(sizes) { acc… (idx; param) => body combine (a, b) { … } }` —
    /// sugar for a full-accumulator `multiFold`.
    Fold {
        /// Iteration domain.
        domain: Vec<PSize>,
        /// The single accumulator declaration.
        acc: PAccDecl,
        /// Index parameter names.
        idx: Vec<Name>,
        /// Accumulator parameter name.
        param: Name,
        /// Update body.
        body: PBody,
        /// Combine lambda `(a, b, body)`.
        combine: (Name, Name, PBody),
    },
    /// `flatMap(size) { (i) => body }`.
    FlatMap {
        /// Iteration domain.
        domain: PSize,
        /// Index parameter name.
        param: Name,
        /// Body (must produce a dynamic vector).
        body: PBody,
    },
    /// `groupByFold(size) { acc… (i) => [pre] (key = …; update …) | merge d combine (a,b) {…} }`.
    GroupByFold {
        /// Iteration domain.
        domain: PSize,
        /// Per-bucket accumulator declaration.
        acc: PAccDecl,
        /// Index parameter name.
        idx: Name,
        /// Optional `pre { … }` block.
        pre: Option<PBody>,
        /// Element form: `key = expr` + update clause.
        element: Option<(PExpr, PUpdate)>,
        /// Merge form: the dictionary name.
        merge: Option<Name>,
        /// Combine lambda.
        combine: (Name, Name, PBody),
    },
}

/// Literals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PLit {
    /// Float (including `inf` / `-inf` / `nan`).
    F32(f32),
    /// Integer.
    I32(i64),
    /// Boolean.
    Bool(bool),
}

/// An expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct PExpr {
    /// Node kind.
    pub kind: PExprKind,
    /// Source span of the whole expression.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum PExprKind {
    /// Literal.
    Lit(PLit),
    /// Name reference.
    Var(Name),
    /// `size(<size>)`.
    SizeOf(PSize),
    /// Unary operation (`neg`, `!`, `sqrt`, …).
    Un(pphw_ir::expr::UnOp, Box<PExpr>),
    /// Binary operation.
    Bin(pphw_ir::expr::BinOp, Box<PExpr>, Box<PExpr>),
    /// `if (c) t else f`.
    Select(Box<PExpr>, Box<PExpr>, Box<PExpr>),
    /// `tuple(…)` or `(a, b, …)`.
    Tuple(Vec<PExpr>),
    /// `e._N` (1-based in the surface syntax).
    Field(Box<PExpr>, usize),
    /// `name(i, j, …)` — tensor element read.
    Read(Name, Vec<PExpr>),
}
