//! Recursive-descent parser with statement-level error recovery.
//!
//! The parser consumes the token stream of [`crate::lexer`] and produces
//! the [`crate::ast`] parse tree. Errors never abort the whole parse:
//! a failed statement records a diagnostic and the parser re-synchronizes
//! at the next statement keyword (`let`, `yield`, `input`, `return`) or
//! closing brace, so one bad line yields one diagnostic, not a cascade.
//!
//! Clause words (`acc`, `pre`, `update`, `combine`, `merge`, `key`,
//! `splat`, `reuse`, `slice`, `copy`) and type names are contextual: they
//! lex as identifiers and are matched by text where the grammar expects
//! them, which keeps them usable as ordinary variable names.

use pphw_ir::expr::{BinOp, UnOp};
use pphw_ir::span::Span;
use pphw_ir::types::DType;

use crate::ast::{
    Name, PAccDecl, PBody, PCombine, PDim, PExpr, PExprKind, PInput, PLit, PProgram, PRhs, PScalar,
    PSize, PStmt, PType, PUpdate, PVvItem,
};
use crate::codes;
use crate::lexer::{TokKind, Token};
use crate::ParseError;

/// Maximum expression/size/type nesting depth; deeper input is rejected
/// with a diagnostic instead of overflowing the stack (fuzz inputs love
/// `((((((…`).
const MAX_DEPTH: u32 = 200;

/// Parses a token stream into a program AST. Diagnostics accumulate in
/// `errors`; `None` is returned only when the `program` header itself is
/// unusable.
pub fn parse(toks: &[Token], errors: &mut Vec<ParseError>) -> Option<PProgram> {
    let mut p = Parser {
        toks,
        pos: 0,
        errors,
        depth: 0,
    };
    p.program()
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    errors: &'a mut Vec<ParseError>,
    depth: u32,
}

type PResult<T> = Result<T, ()>;

impl Parser<'_> {
    fn peek(&self) -> &TokKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn peek_at(&self, off: usize) -> &TokKind {
        &self.toks[(self.pos + off).min(self.toks.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1).min(self.toks.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, k: &TokKind) -> bool {
        self.peek() == k
    }

    fn eat(&mut self, k: &TokKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_kw(&self, k: &str) -> bool {
        matches!(self.peek(), TokKind::Kw(w) if *w == k)
    }

    fn eat_kw(&mut self, k: &str) -> bool {
        if self.at_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Contextual keyword: an identifier with exactly this text.
    fn at_word(&self, w: &str) -> bool {
        matches!(self.peek(), TokKind::Ident(s) if s == w)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.at_word(w) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&mut self, code: &'static str, msg: impl Into<String>) {
        self.errors
            .push(ParseError::new(code, msg.into(), self.peek_span()));
    }

    fn unexpected(&mut self, what: &str) {
        let got = self.peek().describe();
        self.error(
            codes::UNEXPECTED_TOKEN,
            format!("expected {what}, found {got}"),
        );
    }

    fn expect(&mut self, k: &TokKind, what: &str) -> PResult<Span> {
        if self.at(k) {
            Ok(self.bump().span)
        } else {
            self.unexpected(what);
            Err(())
        }
    }

    fn expect_kw(&mut self, k: &'static str) -> PResult<Span> {
        self.expect(&TokKind::Kw(k), &format!("`{k}`"))
    }

    fn expect_word(&mut self, w: &str) -> PResult<Span> {
        if self.at_word(w) {
            Ok(self.bump().span)
        } else {
            self.unexpected(&format!("`{w}`"));
            Err(())
        }
    }

    fn expect_ident(&mut self, what: &str) -> PResult<Name> {
        match self.peek() {
            TokKind::Ident(s) => {
                let text = s.clone();
                let span = self.bump().span;
                Ok(Name { text, span })
            }
            _ => {
                self.unexpected(what);
                Err(())
            }
        }
    }

    /// Skips ahead to the next statement boundary after an error.
    fn sync(&mut self) {
        // Always make progress so error recovery cannot loop.
        if !matches!(self.peek(), TokKind::Eof) {
            self.bump();
        }
        loop {
            match self.peek() {
                TokKind::Eof | TokKind::RBrace => return,
                TokKind::Kw("let" | "yield" | "input" | "return") => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn with_depth<T>(&mut self, f: impl FnOnce(&mut Self) -> PResult<T>) -> PResult<T> {
        if self.depth >= MAX_DEPTH {
            self.error(codes::UNEXPECTED_TOKEN, "expression nesting too deep");
            return Err(());
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    // ---- program structure ----

    fn program(&mut self) -> Option<PProgram> {
        self.expect_kw("program").ok()?;
        let name = self.expect_ident("program name").ok()?;
        self.expect(&TokKind::LParen, "`(`").ok()?;
        let mut size_vars = Vec::new();
        if !self.at(&TokKind::RParen) {
            while let Ok(n) = self.expect_ident("size variable") {
                size_vars.push(n);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen, "`)`").ok()?;
        self.expect(&TokKind::LBrace, "`{`").ok()?;

        let mut inputs = Vec::new();
        let mut stmts = Vec::new();
        let mut returns = Vec::new();
        let mut saw_return = false;
        loop {
            if self.at_kw("input") {
                if let Ok(i) = self.input_decl() {
                    inputs.push(i);
                } else {
                    self.sync();
                }
            } else if self.at_kw("let") {
                if let Ok(s) = self.stmt() {
                    stmts.push(s);
                } else {
                    self.sync();
                }
            } else if self.at_kw("return") {
                self.bump();
                if self.expect(&TokKind::LParen, "`(`").is_ok() {
                    if !self.at(&TokKind::RParen) {
                        while let Ok(n) = self.expect_ident("output name") {
                            returns.push(n);
                            if !self.eat(&TokKind::Comma) {
                                break;
                            }
                        }
                    }
                    let _ = self.expect(&TokKind::RParen, "`)`");
                }
                saw_return = true;
                let _ = self.expect(&TokKind::RBrace, "`}`");
                break;
            } else if matches!(self.peek(), TokKind::RBrace | TokKind::Eof) {
                self.error(
                    codes::PROGRAM_STRUCTURE,
                    "program body must end with `return (…)`",
                );
                break;
            } else {
                self.unexpected("`input`, `let`, or `return`");
                self.sync();
            }
        }
        if saw_return && !matches!(self.peek(), TokKind::Eof) {
            self.error(codes::PROGRAM_STRUCTURE, "text after closing `}`");
        }
        Some(PProgram {
            name,
            size_vars,
            inputs,
            stmts,
            returns,
        })
    }

    fn input_decl(&mut self) -> PResult<PInput> {
        let start = self.expect_kw("input")?;
        let name = self.expect_ident("input name")?;
        self.expect(&TokKind::Colon, "`:`")?;
        let ty = self.ty()?;
        Ok(PInput {
            name,
            ty,
            span: start.merge(self.prev_span()),
        })
    }

    // ---- statements and bodies ----

    fn stmt(&mut self) -> PResult<PStmt> {
        let start = self.expect_kw("let")?;
        let mut lhs = Vec::new();
        if self.eat(&TokKind::LParen) {
            if !self.at(&TokKind::RParen) {
                loop {
                    lhs.push(self.expect_ident("bound name")?);
                    if !self.eat(&TokKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokKind::RParen, "`)`")?;
        } else {
            lhs.push(self.expect_ident("bound name")?);
        }
        self.expect(&TokKind::Assign, "`=`")?;
        let rhs = self.rhs()?;
        Ok(PStmt {
            lhs,
            rhs,
            span: start.merge(self.prev_span()),
        })
    }

    /// A block body: `let` statements, then an optional `yield`.
    fn body(&mut self) -> PBody {
        let start = self.peek_span();
        let mut stmts = Vec::new();
        let mut yields = Vec::new();
        loop {
            if self.at_kw("let") {
                match self.stmt() {
                    Ok(s) => stmts.push(s),
                    Err(()) => self.sync(),
                }
            } else if self.at_kw("yield") {
                self.bump();
                loop {
                    match self.expr() {
                        Ok(e) => yields.push(e),
                        Err(()) => {
                            self.sync();
                            break;
                        }
                    }
                    if !self.eat(&TokKind::Comma) {
                        break;
                    }
                }
                break;
            } else {
                break;
            }
        }
        PBody {
            stmts,
            yields,
            span: start.merge(self.prev_span()),
        }
    }

    /// `{ body }`.
    fn braced_body(&mut self) -> PResult<PBody> {
        self.expect(&TokKind::LBrace, "`{`")?;
        let b = self.body();
        self.expect(&TokKind::RBrace, "`}`")?;
        Ok(b)
    }

    fn rhs(&mut self) -> PResult<PRhs> {
        match self.peek() {
            TokKind::Kw("map") => self.map_rhs(),
            TokKind::Kw("multiFold") => self.multifold_rhs(),
            TokKind::Kw("fold") => self.fold_rhs(),
            TokKind::Kw("flatMap") => self.flatmap_rhs(),
            TokKind::Kw("groupByFold") => self.gbf_rhs(),
            TokKind::LBracket => self.varvec_rhs(),
            TokKind::Ident(_)
                if self.peek_at(1) == &TokKind::Dot
                    && matches!(self.peek_at(2), TokKind::Ident(w) if w == "slice" || w == "copy") =>
            {
                self.slicecopy_rhs()
            }
            _ => Ok(PRhs::Expr(self.expr()?)),
        }
    }

    fn varvec_rhs(&mut self) -> PResult<PRhs> {
        self.expect(&TokKind::LBracket, "`[`")?;
        let mut items = Vec::new();
        if !self.at(&TokKind::RBracket) {
            loop {
                let guard = if self.eat_kw("if") {
                    self.expect(&TokKind::LParen, "`(`")?;
                    let g = self.expr()?;
                    self.expect(&TokKind::RParen, "`)`")?;
                    Some(g)
                } else {
                    None
                };
                let value = self.expr()?;
                items.push(PVvItem { guard, value });
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokKind::RBracket, "`]`")?;
        Ok(PRhs::VarVec(items))
    }

    fn slicecopy_rhs(&mut self) -> PResult<PRhs> {
        let tensor = self.expect_ident("tensor name")?;
        self.expect(&TokKind::Dot, "`.`")?;
        let is_copy = if self.eat_word("copy") {
            true
        } else {
            self.expect_word("slice")?;
            false
        };
        self.expect(&TokKind::LParen, "`(`")?;
        let mut dims = Vec::new();
        if !self.at(&TokKind::RParen) {
            loop {
                dims.push(self.dim()?);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen, "`)`")?;
        let mut reuse = 1u32;
        if self.at_word("reuse") {
            if !is_copy {
                self.error(codes::UNEXPECTED_TOKEN, "`reuse` only applies to `copy`");
                return Err(());
            }
            self.bump();
            match self.peek() {
                TokKind::Int(v) if *v > 0 && *v <= i64::from(u32::MAX) => {
                    reuse = self.bump_int_as_u32();
                }
                _ => {
                    self.unexpected("positive reuse factor");
                    return Err(());
                }
            }
        }
        Ok(PRhs::SliceCopy {
            tensor,
            dims,
            is_copy,
            reuse,
        })
    }

    fn bump_int_as_u32(&mut self) -> u32 {
        match self.bump().kind {
            TokKind::Int(v) => u32::try_from(v).unwrap_or(1),
            _ => 1,
        }
    }

    fn dim(&mut self) -> PResult<PDim> {
        if self.eat(&TokKind::Star) {
            return Ok(PDim::Full);
        }
        let start = self.expr()?;
        if self.eat(&TokKind::ColonPlus) {
            let len = self.size()?;
            Ok(PDim::Window(start, len))
        } else {
            Ok(PDim::Point(start))
        }
    }

    fn map_rhs(&mut self) -> PResult<PRhs> {
        self.expect_kw("map")?;
        let domain = self.paren_sizes(false)?;
        self.expect(&TokKind::LBrace, "`{`")?;
        let params = self.paren_idents("index parameter")?;
        self.expect(&TokKind::FatArrow, "`=>`")?;
        let body = self.body();
        self.expect(&TokKind::RBrace, "`}`")?;
        Ok(PRhs::Map {
            domain,
            params,
            body,
        })
    }

    fn multifold_rhs(&mut self) -> PResult<PRhs> {
        self.expect_kw("multiFold")?;
        let domain = self.paren_sizes(false)?;
        self.expect(&TokKind::LBrace, "`{`")?;
        let mut accs = Vec::new();
        while self.at_word("acc") {
            accs.push(self.acc_decl()?);
        }
        if accs.is_empty() {
            self.error(
                codes::UNEXPECTED_TOKEN,
                "multiFold needs at least one `acc`",
            );
        }
        let idx = self.paren_idents("index parameter")?;
        self.expect(&TokKind::FatArrow, "`=>`")?;
        let pre = self.opt_pre()?;
        let mut updates = Vec::new();
        while self.at_word("update") {
            updates.push(self.update_clause(true)?);
        }
        let mut combines = Vec::new();
        while self.at_word("combine") {
            combines.push(self.combine_clause(true)?);
        }
        self.expect(&TokKind::RBrace, "`}`")?;
        Ok(PRhs::MultiFold {
            domain,
            accs,
            idx,
            pre,
            updates,
            combines,
        })
    }

    fn fold_rhs(&mut self) -> PResult<PRhs> {
        self.expect_kw("fold")?;
        let domain = self.paren_sizes(false)?;
        self.expect(&TokKind::LBrace, "`{`")?;
        let acc = self.acc_decl()?;
        let idx = self.paren_idents("index parameter")?;
        let param = {
            self.expect(&TokKind::LParen, "`(`")?;
            let p = self.expect_ident("accumulator parameter")?;
            self.expect(&TokKind::RParen, "`)`")?;
            p
        };
        self.expect(&TokKind::FatArrow, "`=>`")?;
        let body = self.body();
        self.expect_word("combine")?;
        let combine = self.combine_lambda()?;
        self.expect(&TokKind::RBrace, "`}`")?;
        Ok(PRhs::Fold {
            domain,
            acc,
            idx,
            param,
            body,
            combine,
        })
    }

    fn flatmap_rhs(&mut self) -> PResult<PRhs> {
        self.expect_kw("flatMap")?;
        self.expect(&TokKind::LParen, "`(`")?;
        let domain = self.size()?;
        self.expect(&TokKind::RParen, "`)`")?;
        self.expect(&TokKind::LBrace, "`{`")?;
        let params = self.paren_idents("index parameter")?;
        if params.len() != 1 {
            self.error(codes::ARITY, "flatMap takes exactly one index parameter");
            return Err(());
        }
        self.expect(&TokKind::FatArrow, "`=>`")?;
        let body = self.body();
        self.expect(&TokKind::RBrace, "`}`")?;
        let mut params = params;
        let param = params.remove(0);
        Ok(PRhs::FlatMap {
            domain,
            param,
            body,
        })
    }

    fn gbf_rhs(&mut self) -> PResult<PRhs> {
        self.expect_kw("groupByFold")?;
        self.expect(&TokKind::LParen, "`(`")?;
        let domain = self.size()?;
        self.expect(&TokKind::RParen, "`)`")?;
        self.expect(&TokKind::LBrace, "`{`")?;
        let acc = self.acc_decl()?;
        let idx_list = self.paren_idents("index parameter")?;
        if idx_list.len() != 1 {
            self.error(
                codes::ARITY,
                "groupByFold takes exactly one index parameter",
            );
            return Err(());
        }
        let mut idx_list = idx_list;
        let idx = idx_list.remove(0);
        self.expect(&TokKind::FatArrow, "`=>`")?;
        let pre = self.opt_pre()?;
        let (element, merge) = if self.at_word("key") {
            self.bump();
            self.expect(&TokKind::Assign, "`=`")?;
            let key = self.expr()?;
            let update = self.update_clause(false)?;
            (Some((key, update)), None)
        } else if self.at_word("merge") {
            self.bump();
            let dict = self.expect_ident("dictionary name")?;
            (None, Some(dict))
        } else {
            self.unexpected("`key = …` or `merge`");
            return Err(());
        };
        self.expect_word("combine")?;
        let combine = self.combine_lambda()?;
        self.expect(&TokKind::RBrace, "`}`")?;
        Ok(PRhs::GroupByFold {
            domain,
            acc,
            idx,
            pre,
            element,
            merge,
            combine,
        })
    }

    fn opt_pre(&mut self) -> PResult<Option<PBody>> {
        if self.at_word("pre") {
            self.bump();
            Ok(Some(self.braced_body()?))
        } else {
            Ok(None)
        }
    }

    /// `acc name: <scalar>[shape] = splat(lits)`.
    fn acc_decl(&mut self) -> PResult<PAccDecl> {
        let start = self.expect_word("acc")?;
        let name = self.expect_ident("accumulator name")?;
        self.expect(&TokKind::Colon, "`:`")?;
        let elem = self.scalar_ty()?;
        let shape = if self.eat(&TokKind::LBracket) {
            let s = self.size_list(&TokKind::RBracket)?;
            self.expect(&TokKind::RBracket, "`]`")?;
            s
        } else {
            Vec::new()
        };
        self.expect(&TokKind::Assign, "`=`")?;
        self.expect_word("splat")?;
        self.expect(&TokKind::LParen, "`(`")?;
        let mut init = Vec::new();
        if !self.at(&TokKind::RParen) {
            loop {
                init.push(self.lit()?);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen, "`)`")?;
        if init.is_empty() {
            self.error(codes::ARITY, "splat needs at least one literal");
        }
        Ok(PAccDecl {
            name,
            elem,
            shape,
            init,
            span: start.merge(self.prev_span()),
        })
    }

    /// A bare literal, as allowed in `splat(…)`: numbers (optionally
    /// negative), booleans, `inf`, `-inf`, `nan`.
    fn lit(&mut self) -> PResult<PLit> {
        let neg = self.eat(&TokKind::Minus);
        let lit = match self.peek().clone() {
            TokKind::Int(v) => PLit::I32(if neg { -v } else { v }),
            TokKind::Float(v) => PLit::F32(if neg { -v } else { v }),
            TokKind::Kw("inf") => PLit::F32(if neg {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            }),
            TokKind::Kw("nan") if !neg => PLit::F32(f32::NAN),
            TokKind::Kw("true") if !neg => PLit::Bool(true),
            TokKind::Kw("false") if !neg => PLit::Bool(false),
            _ => {
                self.unexpected("literal");
                return Err(());
            }
        };
        self.bump();
        Ok(lit)
    }

    /// `update [<acc>] @ (locs) [shape] (param) { body }`.
    fn update_clause(&mut self, named: bool) -> PResult<PUpdate> {
        let start = self.expect_word("update")?;
        let acc = if named {
            Some(self.expect_ident("accumulator name")?)
        } else {
            None
        };
        self.expect(&TokKind::At, "`@`")?;
        self.expect(&TokKind::LParen, "`(`")?;
        let mut locs = Vec::new();
        if !self.at(&TokKind::RParen) {
            loop {
                locs.push(self.expr()?);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen, "`)`")?;
        self.expect(&TokKind::LBracket, "`[`")?;
        let shape = self.size_list(&TokKind::RBracket)?;
        self.expect(&TokKind::RBracket, "`]`")?;
        self.expect(&TokKind::LParen, "`(`")?;
        let param = self.expect_ident("region parameter")?;
        self.expect(&TokKind::RParen, "`)`")?;
        let body = self.braced_body()?;
        Ok(PUpdate {
            acc,
            locs,
            shape,
            param,
            body,
            span: start.merge(self.prev_span()),
        })
    }

    /// `combine [<acc>] ( (a, b) { body } | _ )` — multiFold form.
    fn combine_clause(&mut self, named: bool) -> PResult<PCombine> {
        let start = self.expect_word("combine")?;
        let acc = if named {
            Some(self.expect_ident("accumulator name")?)
        } else {
            None
        };
        if self.at_word("_") {
            self.bump();
            return Ok(PCombine {
                acc,
                lambda: None,
                span: start.merge(self.prev_span()),
            });
        }
        let lambda = self.combine_lambda()?;
        Ok(PCombine {
            acc,
            lambda: Some(lambda),
            span: start.merge(self.prev_span()),
        })
    }

    /// `(a, b) { body }` — the parameters and body of a combine.
    fn combine_lambda(&mut self) -> PResult<(Name, Name, PBody)> {
        self.expect(&TokKind::LParen, "`(`")?;
        let a = self.expect_ident("combine parameter")?;
        self.expect(&TokKind::Comma, "`,`")?;
        let b = self.expect_ident("combine parameter")?;
        self.expect(&TokKind::RParen, "`)`")?;
        let body = self.braced_body()?;
        Ok((a, b, body))
    }

    fn paren_idents(&mut self, what: &str) -> PResult<Vec<Name>> {
        self.expect(&TokKind::LParen, "`(`")?;
        let mut out = Vec::new();
        if !self.at(&TokKind::RParen) {
            loop {
                out.push(self.expect_ident(what)?);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen, "`)`")?;
        Ok(out)
    }

    fn paren_sizes(&mut self, allow_empty: bool) -> PResult<Vec<PSize>> {
        self.expect(&TokKind::LParen, "`(`")?;
        let sizes = self.size_list(&TokKind::RParen)?;
        self.expect(&TokKind::RParen, "`)`")?;
        if sizes.is_empty() && !allow_empty {
            self.error(codes::ARITY, "expected at least one size");
        }
        Ok(sizes)
    }

    fn size_list(&mut self, close: &TokKind) -> PResult<Vec<PSize>> {
        let mut out = Vec::new();
        if self.at(close) {
            return Ok(out);
        }
        loop {
            out.push(self.size()?);
            if !self.eat(&TokKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ---- types ----

    fn ty(&mut self) -> PResult<PType> {
        self.with_depth(|p| {
            if p.at_word("Dict") {
                p.bump();
                p.expect(&TokKind::LBracket, "`[`")?;
                let key = p.scalar_ty()?;
                p.expect(&TokKind::ThinArrow, "`->`")?;
                let value = p.ty()?;
                p.expect(&TokKind::RBracket, "`]`")?;
                return Ok(PType::Dict(key, Box::new(value)));
            }
            let st = p.scalar_ty()?;
            if p.eat(&TokKind::LBracket) {
                if p.eat(&TokKind::Question) {
                    p.expect(&TokKind::RBracket, "`]`")?;
                    return Ok(PType::DynVec(st));
                }
                let shape = p.size_list(&TokKind::RBracket)?;
                p.expect(&TokKind::RBracket, "`]`")?;
                if shape.is_empty() {
                    p.error(codes::ARITY, "tensor type needs at least one dimension");
                }
                Ok(PType::Tensor(st, shape))
            } else {
                Ok(PType::Scalar(st))
            }
        })
    }

    fn scalar_ty(&mut self) -> PResult<PScalar> {
        if self.eat(&TokKind::LParen) {
            let mut fields = vec![self.dtype()?];
            while self.eat(&TokKind::Comma) {
                fields.push(self.dtype()?);
            }
            self.expect(&TokKind::RParen, "`)`")?;
            if fields.len() < 2 {
                self.error(codes::ARITY, "tuple type needs at least two fields");
            }
            Ok(PScalar::Tuple(fields))
        } else {
            Ok(PScalar::Prim(self.dtype()?))
        }
    }

    fn dtype(&mut self) -> PResult<DType> {
        let d = match self.peek() {
            TokKind::Ident(s) if s == "Float" => DType::F32,
            TokKind::Ident(s) if s == "Int" => DType::I32,
            TokKind::Ident(s) if s == "Bool" => DType::Bool,
            _ => {
                self.unexpected("type name (`Float`, `Int`, `Bool`)");
                return Err(());
            }
        };
        self.bump();
        Ok(d)
    }

    // ---- sizes ----

    fn size(&mut self) -> PResult<PSize> {
        self.with_depth(|p| {
            let mut left = p.size_term()?;
            loop {
                let op = match p.peek() {
                    TokKind::Plus => '+',
                    TokKind::Minus => '-',
                    _ => break,
                };
                p.bump();
                let right = p.size_term()?;
                left = PSize::Bin(op, Box::new(left), Box::new(right));
            }
            Ok(left)
        })
    }

    fn size_term(&mut self) -> PResult<PSize> {
        let mut left = self.size_atom()?;
        loop {
            let op = match self.peek() {
                TokKind::Star => '*',
                TokKind::Slash => '/',
                _ => break,
            };
            self.bump();
            let right = self.size_atom()?;
            left = PSize::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn size_atom(&mut self) -> PResult<PSize> {
        match self.peek().clone() {
            TokKind::Int(v) => {
                self.bump();
                Ok(PSize::Const(v))
            }
            TokKind::Ident(text) => {
                let span = self.bump().span;
                Ok(PSize::Var(Name { text, span }))
            }
            TokKind::LParen => {
                self.bump();
                let s = self.size()?;
                self.expect(&TokKind::RParen, "`)`")?;
                Ok(s)
            }
            _ => {
                self.unexpected("size expression");
                Err(())
            }
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> PResult<PExpr> {
        self.with_depth(Self::or_expr)
    }

    fn bin_chain(
        &mut self,
        next: impl Fn(&mut Self) -> PResult<PExpr>,
        op_of: impl Fn(&TokKind) -> Option<BinOp>,
    ) -> PResult<PExpr> {
        let mut left = next(self)?;
        while let Some(op) = op_of(self.peek()) {
            self.bump();
            let right = next(self)?;
            let span = left.span.merge(right.span);
            left = PExpr {
                kind: PExprKind::Bin(op, Box::new(left), Box::new(right)),
                span,
            };
        }
        Ok(left)
    }

    fn or_expr(&mut self) -> PResult<PExpr> {
        self.bin_chain(Self::and_expr, |t| {
            matches!(t, TokKind::OrOr).then_some(BinOp::Or)
        })
    }

    fn and_expr(&mut self) -> PResult<PExpr> {
        self.bin_chain(Self::cmp_expr, |t| {
            matches!(t, TokKind::AndAnd).then_some(BinOp::And)
        })
    }

    /// Comparison (non-associative).
    fn cmp_expr(&mut self) -> PResult<PExpr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            TokKind::Lt => BinOp::Lt,
            TokKind::Le => BinOp::Le,
            TokKind::EqEq => BinOp::Eq,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        let span = left.span.merge(right.span);
        Ok(PExpr {
            kind: PExprKind::Bin(op, Box::new(left), Box::new(right)),
            span,
        })
    }

    fn add_expr(&mut self) -> PResult<PExpr> {
        self.bin_chain(Self::mul_expr, |t| match t {
            TokKind::Plus => Some(BinOp::Add),
            TokKind::Minus => Some(BinOp::Sub),
            _ => None,
        })
    }

    fn mul_expr(&mut self) -> PResult<PExpr> {
        self.bin_chain(Self::unary_expr, |t| match t {
            TokKind::Star => Some(BinOp::Mul),
            TokKind::Slash => Some(BinOp::Div),
            TokKind::Percent => Some(BinOp::Rem),
            _ => None,
        })
    }

    fn unary_expr(&mut self) -> PResult<PExpr> {
        self.with_depth(|p| {
            if p.at(&TokKind::Minus) {
                // A leading `-` always denotes a negative literal;
                // computational negation is spelled `neg(…)`.
                let start = p.bump().span;
                let lit = match p.peek().clone() {
                    TokKind::Int(v) => PLit::I32(-v),
                    TokKind::Float(v) => PLit::F32(-v),
                    TokKind::Kw("inf") => PLit::F32(f32::NEG_INFINITY),
                    _ => {
                        p.error(
                            codes::UNEXPECTED_TOKEN,
                            "`-` must precede a numeric literal; use neg(…) for negation",
                        );
                        return Err(());
                    }
                };
                let end = p.bump().span;
                return Ok(PExpr {
                    kind: PExprKind::Lit(lit),
                    span: start.merge(end),
                });
            }
            if p.at(&TokKind::Bang) {
                let start = p.bump().span;
                let inner = p.unary_expr()?;
                let span = start.merge(inner.span);
                return Ok(PExpr {
                    kind: PExprKind::Un(UnOp::Not, Box::new(inner)),
                    span,
                });
            }
            p.postfix_expr()
        })
    }

    fn postfix_expr(&mut self) -> PResult<PExpr> {
        let mut e = self.primary_expr()?;
        while self.at(&TokKind::Dot) {
            self.bump();
            let field = match self.peek() {
                TokKind::Ident(s) if s.starts_with('_') && s[1..].parse::<usize>().is_ok() => {
                    #[allow(clippy::unwrap_used)] // checked by the guard above
                    s[1..].parse::<usize>().unwrap()
                }
                _ => {
                    self.unexpected("tuple field (`_1`, `_2`, …)");
                    return Err(());
                }
            };
            let fspan = self.bump().span;
            if field == 0 {
                self.error(codes::BAD_LITERAL, "tuple fields are 1-based");
                return Err(());
            }
            let span = e.span.merge(fspan);
            e = PExpr {
                kind: PExprKind::Field(Box::new(e), field - 1),
                span,
            };
        }
        Ok(e)
    }

    fn call_args(&mut self) -> PResult<Vec<PExpr>> {
        self.expect(&TokKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.at(&TokKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen, "`)`")?;
        Ok(args)
    }

    fn fixed_args(&mut self, n: usize, what: &str) -> PResult<Vec<PExpr>> {
        let span = self.peek_span();
        let args = self.call_args()?;
        if args.len() != n {
            self.errors.push(ParseError::new(
                codes::ARITY,
                format!("{what} takes {n} argument(s), got {}", args.len()),
                span,
            ));
            return Err(());
        }
        Ok(args)
    }

    fn primary_expr(&mut self) -> PResult<PExpr> {
        let start = self.peek_span();
        let kind = match self.peek().clone() {
            TokKind::Int(v) => {
                self.bump();
                PExprKind::Lit(PLit::I32(v))
            }
            TokKind::Float(v) => {
                self.bump();
                PExprKind::Lit(PLit::F32(v))
            }
            TokKind::Kw("true") => {
                self.bump();
                PExprKind::Lit(PLit::Bool(true))
            }
            TokKind::Kw("false") => {
                self.bump();
                PExprKind::Lit(PLit::Bool(false))
            }
            TokKind::Kw("inf") => {
                self.bump();
                PExprKind::Lit(PLit::F32(f32::INFINITY))
            }
            TokKind::Kw("nan") => {
                self.bump();
                PExprKind::Lit(PLit::F32(f32::NAN))
            }
            TokKind::Kw(k @ ("min" | "max")) => {
                self.bump();
                let mut args = self.fixed_args(2, k)?;
                let b = Box::new(args.remove(1));
                let a = Box::new(args.remove(0));
                let op = if k == "min" { BinOp::Min } else { BinOp::Max };
                PExprKind::Bin(op, a, b)
            }
            TokKind::Kw(
                k @ ("sqrt" | "ln" | "exp" | "abs" | "square" | "float" | "int" | "neg"),
            ) => {
                self.bump();
                let mut args = self.fixed_args(1, k)?;
                let a = Box::new(args.remove(0));
                let op = match k {
                    "sqrt" => UnOp::Sqrt,
                    "ln" => UnOp::Ln,
                    "exp" => UnOp::Exp,
                    "abs" => UnOp::Abs,
                    "square" => UnOp::Square,
                    "float" => UnOp::ToF32,
                    "int" => UnOp::ToI32,
                    _ => UnOp::Neg,
                };
                PExprKind::Un(op, a)
            }
            TokKind::Kw("tuple") => {
                self.bump();
                PExprKind::Tuple(self.call_args()?)
            }
            TokKind::Kw("size") => {
                self.bump();
                self.expect(&TokKind::LParen, "`(`")?;
                let s = self.size()?;
                self.expect(&TokKind::RParen, "`)`")?;
                PExprKind::SizeOf(s)
            }
            TokKind::Kw("if") => return self.select_expr(),
            TokKind::LParen => {
                self.bump();
                let first = self.expr()?;
                if self.eat(&TokKind::Comma) {
                    let mut items = vec![first];
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(&TokKind::RParen, "`)`")?;
                    return Ok(PExpr {
                        kind: PExprKind::Tuple(items),
                        span: start.merge(end),
                    });
                }
                let end = self.expect(&TokKind::RParen, "`)`")?;
                // Plain grouping: same node, widened span.
                return Ok(PExpr {
                    kind: first.kind,
                    span: start.merge(end),
                });
            }
            TokKind::Ident(text) => {
                let span = self.bump().span;
                let name = Name { text, span };
                if self.at(&TokKind::LParen) {
                    PExprKind::Read(name, self.call_args()?)
                } else {
                    PExprKind::Var(name)
                }
            }
            _ => {
                self.unexpected("expression");
                return Err(());
            }
        };
        Ok(PExpr {
            kind,
            span: start.merge(self.prev_span()),
        })
    }

    /// `if (cond) then else else_` — a conditional value.
    fn select_expr(&mut self) -> PResult<PExpr> {
        let start = self.expect_kw("if")?;
        self.expect(&TokKind::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&TokKind::RParen, "`)`")?;
        let t = self.expr()?;
        self.expect_kw("else")?;
        let f = self.expr()?;
        let span = start.merge(f.span);
        Ok(PExpr {
            kind: PExprKind::Select(Box::new(cond), Box::new(t), Box::new(f)),
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> PProgram {
        let mut errs = Vec::new();
        let toks = lex(src, &mut errs);
        let ast = parse(&toks, &mut errs);
        assert!(errs.is_empty(), "unexpected errors: {errs:?}\nin:\n{src}");
        ast.expect("program should parse")
    }

    #[test]
    fn parses_minimal_program() {
        let p = parse_ok("program p(d) {\n  input x: Float[d]\n  return (x)\n}\n");
        assert_eq!(p.name.text, "p");
        assert_eq!(p.size_vars.len(), 1);
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.returns[0].text, "x");
    }

    #[test]
    fn parses_map_with_expr_body() {
        let p = parse_ok(
            "program m(d) { input x: Float[d]\n let y = map(d) { (i) =>\n  let v = (2.0 * x(i))\n  yield v\n }\n return (y) }",
        );
        match &p.stmts[0].rhs {
            PRhs::Map {
                domain,
                params,
                body,
            } => {
                assert_eq!(domain.len(), 1);
                assert_eq!(params[0].text, "i");
                assert_eq!(body.stmts.len(), 1);
                assert_eq!(body.yields.len(), 1);
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn parses_multifold_clauses() {
        let p = parse_ok(
            "program s(d) { input x: Float[d]\n let s = multiFold(d) {\n  acc s: Float = splat(0.0)\n  (i) =>\n  update s @ () [] (acc) {\n    let u = (acc + x(i))\n    yield u\n  }\n  combine s (a, b) {\n    let c = (a + b)\n    yield c\n  }\n }\n return (s) }",
        );
        match &p.stmts[0].rhs {
            PRhs::MultiFold {
                accs,
                updates,
                combines,
                ..
            } => {
                assert_eq!(accs.len(), 1);
                assert_eq!(updates.len(), 1);
                assert_eq!(combines.len(), 1);
                assert!(combines[0].lambda.is_some());
            }
            other => panic!("expected multiFold, got {other:?}"),
        }
    }

    #[test]
    fn recovers_from_bad_statement() {
        let mut errs = Vec::new();
        let toks = lex(
            "program p(d) { input x: Float[d]\n let y = ???\n let z = x(0)\n return (z) }",
            &mut errs,
        );
        let ast = parse(&toks, &mut errs).expect("recovers");
        assert!(!errs.is_empty());
        // The good statement after the bad one still parses.
        assert_eq!(ast.stmts.len(), 1);
        assert_eq!(ast.stmts[0].lhs[0].text, "z");
    }

    #[test]
    fn negative_literal_only_before_numbers() {
        let mut errs = Vec::new();
        let toks = lex("program p() { let y = -x return (y) }", &mut errs);
        let _ = parse(&toks, &mut errs);
        assert!(errs.iter().any(|e| e.message.contains("neg(")));
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut src = String::from("program p() { let y = ");
        for _ in 0..5000 {
            src.push('(');
        }
        src.push('1');
        for _ in 0..5000 {
            src.push(')');
        }
        src.push_str(" return (y) }");
        let mut errs = Vec::new();
        let toks = lex(&src, &mut errs);
        let _ = parse(&toks, &mut errs);
        assert!(errs.iter().any(|e| e.message.contains("too deep")));
    }

    #[test]
    fn parses_slice_copy_and_varvec() {
        let p = parse_ok(
            "program p(n, b) { input x: Float[n]\n let t = x.copy(0 :+ b) reuse 2\n let s = x.slice(*)\n let v = [if ((0.0 < x(0))) x(0), 1.0]\n return (t) }",
        );
        match &p.stmts[0].rhs {
            PRhs::SliceCopy {
                is_copy,
                reuse,
                dims,
                ..
            } => {
                assert!(*is_copy);
                assert_eq!(*reuse, 2);
                assert_eq!(dims.len(), 1);
            }
            other => panic!("expected copy, got {other:?}"),
        }
        assert!(matches!(
            &p.stmts[1].rhs,
            PRhs::SliceCopy { is_copy: false, .. }
        ));
        match &p.stmts[2].rhs {
            PRhs::VarVec(items) => {
                assert_eq!(items.len(), 2);
                assert!(items[0].guard.is_some());
                assert!(items[1].guard.is_none());
            }
            other => panic!("expected varvec, got {other:?}"),
        }
    }
}
