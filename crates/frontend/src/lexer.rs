//! Tokenizer for the textual PPL surface syntax.
//!
//! Reserved words come from [`pphw_ir::pretty::KEYWORDS`] so the lexer and
//! the faithful emitter cannot drift apart; clause words (`acc`, `pre`,
//! `update`, …) and type names lex as ordinary identifiers and are matched
//! by text where the grammar expects them. The lexer never panics: invalid
//! characters and malformed literals become [`ParseError`]s and lexing
//! continues.

use pphw_ir::pretty::KEYWORDS;
use pphw_ir::span::Span;

use crate::ParseError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// Where in the source it sits.
    pub span: Span,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier (including contextual clause words and type names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (has a `.` or an exponent).
    Float(f32),
    /// Reserved word (an entry of [`KEYWORDS`]).
    Kw(&'static str),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `:+` (slice window)
    ColonPlus,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `=>`
    FatArrow,
    /// `->` (dict type)
    ThinArrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `?` (dynamic-length dimension)
    Question,
    /// End of input.
    Eof,
}

impl TokKind {
    /// Short rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("identifier `{s}`"),
            TokKind::Int(v) => format!("integer `{v}`"),
            TokKind::Float(v) => format!("float `{v}`"),
            TokKind::Kw(k) => format!("keyword `{k}`"),
            TokKind::LParen => "`(`".into(),
            TokKind::RParen => "`)`".into(),
            TokKind::LBrace => "`{`".into(),
            TokKind::RBrace => "`}`".into(),
            TokKind::LBracket => "`[`".into(),
            TokKind::RBracket => "`]`".into(),
            TokKind::Comma => "`,`".into(),
            TokKind::Colon => "`:`".into(),
            TokKind::ColonPlus => "`:+`".into(),
            TokKind::Assign => "`=`".into(),
            TokKind::EqEq => "`==`".into(),
            TokKind::FatArrow => "`=>`".into(),
            TokKind::ThinArrow => "`->`".into(),
            TokKind::Plus => "`+`".into(),
            TokKind::Minus => "`-`".into(),
            TokKind::Star => "`*`".into(),
            TokKind::Slash => "`/`".into(),
            TokKind::Percent => "`%`".into(),
            TokKind::Lt => "`<`".into(),
            TokKind::Le => "`<=`".into(),
            TokKind::AndAnd => "`&&`".into(),
            TokKind::OrOr => "`||`".into(),
            TokKind::Bang => "`!`".into(),
            TokKind::Dot => "`.`".into(),
            TokKind::At => "`@`".into(),
            TokKind::Question => "`?`".into(),
            TokKind::Eof => "end of input".into(),
        }
    }

    /// The identifier text, when this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenizes `src`. Always returns a token stream terminated by
/// [`TokKind::Eof`]; lexical problems are appended to `errors` and the
/// offending characters skipped.
pub fn lex(src: &str, errors: &mut Vec<ParseError>) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let text = &src[start..i];
            let kind = match KEYWORDS.iter().find(|k| **k == text) {
                Some(k) => TokKind::Kw(k),
                None => TokKind::Ident(text.to_string()),
            };
            toks.push(Token {
                kind,
                span: Span::new(start, i),
            });
            continue;
        }
        // Numbers: digits [. digits] [e[+-]digits]; a float iff it has a
        // `.` or an exponent.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let span = Span::new(start, i);
            let text = &src[start..i];
            let kind = if is_float {
                match text.parse::<f32>() {
                    Ok(v) => TokKind::Float(v),
                    Err(_) => {
                        errors.push(ParseError::new(
                            crate::codes::BAD_LITERAL,
                            format!("float literal `{text}` is out of range"),
                            span,
                        ));
                        TokKind::Float(0.0)
                    }
                }
            } else {
                match text.parse::<i64>() {
                    Ok(v) => TokKind::Int(v),
                    Err(_) => {
                        errors.push(ParseError::new(
                            crate::codes::BAD_LITERAL,
                            format!("integer literal `{text}` is out of range"),
                            span,
                        ));
                        TokKind::Int(0)
                    }
                }
            };
            toks.push(Token { kind, span });
            continue;
        }
        // Punctuation, longest match first.
        // `get` (not slicing) so a multi-byte char after `i` can't split.
        let two = src.get(i..i + 2).unwrap_or("");
        let (kind, len) = match two {
            ":+" => (TokKind::ColonPlus, 2),
            "==" => (TokKind::EqEq, 2),
            "=>" => (TokKind::FatArrow, 2),
            "->" => (TokKind::ThinArrow, 2),
            "<=" => (TokKind::Le, 2),
            "&&" => (TokKind::AndAnd, 2),
            "||" => (TokKind::OrOr, 2),
            _ => match c {
                b'(' => (TokKind::LParen, 1),
                b')' => (TokKind::RParen, 1),
                b'{' => (TokKind::LBrace, 1),
                b'}' => (TokKind::RBrace, 1),
                b'[' => (TokKind::LBracket, 1),
                b']' => (TokKind::RBracket, 1),
                b',' => (TokKind::Comma, 1),
                b':' => (TokKind::Colon, 1),
                b'=' => (TokKind::Assign, 1),
                b'+' => (TokKind::Plus, 1),
                b'-' => (TokKind::Minus, 1),
                b'*' => (TokKind::Star, 1),
                b'/' => (TokKind::Slash, 1),
                b'%' => (TokKind::Percent, 1),
                b'<' => (TokKind::Lt, 1),
                b'!' => (TokKind::Bang, 1),
                b'.' => (TokKind::Dot, 1),
                b'@' => (TokKind::At, 1),
                b'?' => (TokKind::Question, 1),
                _ => {
                    // Skip one whole character (may be multi-byte).
                    let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                    errors.push(ParseError::new(
                        crate::codes::INVALID_TOKEN,
                        format!("invalid character `{}`", &src[i..i + ch_len]),
                        Span::new(i, i + ch_len),
                    ));
                    i += ch_len;
                    continue;
                }
            },
        };
        toks.push(Token {
            kind,
            span: Span::new(i, i + len),
        });
        i += len;
    }
    toks.push(Token {
        kind: TokKind::Eof,
        span: Span::new(src.len(), src.len()),
    });
    toks
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        let mut errs = Vec::new();
        let toks = lex(src, &mut errs);
        assert!(errs.is_empty(), "{errs:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_header() {
        let k = kinds("program sum(d) {");
        assert_eq!(
            k,
            vec![
                TokKind::Kw("program"),
                TokKind::Ident("sum".into()),
                TokKind::LParen,
                TokKind::Ident("d".into()),
                TokKind::RParen,
                TokKind::LBrace,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn clause_words_are_identifiers() {
        let k = kinds("acc update combine pre splat Float");
        assert!(k.iter().take(6).all(|t| matches!(t, TokKind::Ident(_))));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokKind::Int(42));
        assert_eq!(kinds("2.5")[0], TokKind::Float(2.5));
        assert_eq!(kinds("3.4028235e38")[0], TokKind::Float(f32::MAX));
        assert_eq!(kinds("1e-45")[0], TokKind::Float(1e-45));
        // `1.` is an int followed by a dot (field access follows).
        assert_eq!(
            kinds("x._1")[..3],
            [
                TokKind::Ident("x".into()),
                TokKind::Dot,
                TokKind::Ident("_1".into())
            ]
        );
    }

    #[test]
    fn lexes_compound_punct() {
        let k = kinds("=> == = :+ : -> <= && ||");
        assert_eq!(
            k,
            vec![
                TokKind::FatArrow,
                TokKind::EqEq,
                TokKind::Assign,
                TokKind::ColonPlus,
                TokKind::Colon,
                TokKind::ThinArrow,
                TokKind::Le,
                TokKind::AndAnd,
                TokKind::OrOr,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("let x // trailing\nlet");
        assert_eq!(
            k,
            vec![
                TokKind::Kw("let"),
                TokKind::Ident("x".into()),
                TokKind::Kw("let"),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn invalid_chars_error_and_continue() {
        let mut errs = Vec::new();
        let toks = lex("let # x", &mut errs);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, crate::codes::INVALID_TOKEN);
        assert_eq!(toks.len(), 3); // let, x, eof
    }

    #[test]
    fn never_panics_on_arbitrary_bytes() {
        let mut errs = Vec::new();
        let _ = lex(
            "\u{fffd}\u{1F600} @@@ 99999999999999999999 1e99999",
            &mut errs,
        );
        assert!(!errs.is_empty());
    }
}
