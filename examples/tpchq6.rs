//! TPC-H Query 6: a streaming data-querying workload (filter + reduce).
//!
//! Demonstrates the streaming end of the spectrum: tiling buys little
//! (the input is touched once), metapipelining overlaps fetch with the
//! predicated reduction — matching the paper's observation that tpchq6
//! gains come from overlap, not reuse (§6.2). Also runs the standalone
//! FlatMap filter variant to show parallel-FIFO inference.
//!
//! Run with: `cargo run --release --example tpchq6`

use pphw::{compile, evaluate, CompileOptions, OptLevel};
use pphw_apps::tpchq6::{tpchq6_filter_program, tpchq6_golden, tpchq6_inputs, tpchq6_program};
use pphw_ir::size::Size;
use pphw_sim::SimConfig;

fn main() {
    let prog = tpchq6_program();
    let sizes = [("n", 1 << 20)];
    let env = Size::env(&sizes);

    // Three-level comparison.
    let opts = CompileOptions::new(&sizes).tiles(&[("n", 8192)]);
    let eval = evaluate(&prog, &opts, &SimConfig::default()).expect("evaluates");
    println!("=== TPC-H Q6, 1M rows ===\n{}", eval.to_table());

    // Functional check.
    let compiled = compile(&prog, &opts.clone().opt(OptLevel::Metapipelined)).expect("compiles");
    let inputs = tpchq6_inputs(&env, 11);
    let got = compiled.execute(inputs.clone()).expect("executes");
    let want = tpchq6_golden(&inputs, &env);
    assert!(
        got[0].approx_eq(&want[0], 1e-3),
        "revenue mismatch: {:?} vs {:?}",
        got[0],
        want[0]
    );
    println!(
        "revenue = {:.2} (matches plain-Rust reference)",
        got[0].as_f32_slice()[0]
    );

    // The FlatMap filter variant: dynamic output, parallel FIFO hardware.
    let filter = tpchq6_filter_program();
    let fopts = CompileOptions::new(&sizes)
        .tiles(&[("n", 8192)])
        .opt(OptLevel::Metapipelined);
    let fcompiled = compile(&filter, &fopts).expect("filter compiles");
    println!(
        "\n=== standalone filter variant (FlatMap -> parallel FIFO) ===\n{}",
        fcompiled.design.to_diagram()
    );
}
