//! Quickstart: write a parallel-pattern program, tile it, generate
//! hardware, simulate it, and check the result — the complete pipeline in
//! one file.
//!
//! Run with: `cargo run --release --example quickstart`

use pphw::{compile, CompileOptions, OptLevel};
use pphw_ir::builder::ProgramBuilder;
use pphw_ir::interp::Value;
use pphw_ir::pattern::Init;
use pphw_ir::types::{DType, ScalarType};
use pphw_sim::SimConfig;

fn main() {
    // 1. Write a program with parallel patterns: a dot product,
    //    `sum(x .* y)`, as a scalar fold over element-wise products.
    let mut b = ProgramBuilder::new("dot");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![n.clone()]);
    let y = b.input("y", DType::F32, vec![n.clone()]);
    let out = b.fold(
        "dot",
        vec![n],
        vec![],
        ScalarType::Prim(DType::F32),
        Init::zeros(),
        |c, i, acc| {
            let prod = c.mul(c.read(x, vec![c.var(i[0])]), c.read(y, vec![c.var(i[0])]));
            c.add(c.var(acc), prod)
        },
        |c, a, b2| c.add(c.var(a), c.var(b2)),
    );
    let prog = b.finish(vec![out]);
    println!(
        "=== PPL program ===\n{}",
        pphw_ir::pretty::print_program(&prog)
    );

    // 2. Compile at each optimization level for a 1M-element workload.
    let n_val = 1 << 20;
    let sim = SimConfig::default();
    let mut baseline_cycles = 0;
    for level in OptLevel::all() {
        let opts = CompileOptions::new(&[("n", n_val)])
            .tiles(&[("n", 8192)])
            .opt(level);
        let compiled = compile(&prog, &opts).expect("compiles");

        // 3. Simulate the generated design.
        let report = compiled.simulate(&sim).expect("simulates");
        if level == OptLevel::Baseline {
            baseline_cycles = report.cycles;
        }
        println!(
            "{level:<24} {:>12} cycles  ({:.2} ms, {:.2}x)",
            report.cycles,
            report.seconds * 1e3,
            baseline_cycles as f64 / report.cycles as f64
        );

        // 4. Check functional correctness on real data.
        let xs: Vec<f32> = (0..n_val).map(|i| ((i % 17) as f32) * 0.25).collect();
        let ys: Vec<f32> = (0..n_val).map(|i| ((i % 13) as f32) * 0.5).collect();
        let expect: f32 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let got = compiled
            .execute(vec![
                Value::tensor_f32(&[n_val as usize], xs),
                Value::tensor_f32(&[n_val as usize], ys),
            ])
            .expect("executes");
        let got = got[0].as_f32_slice()[0];
        let rel = ((got - expect) / expect).abs();
        assert!(rel < 1e-3, "result mismatch: {got} vs {expect}");
    }

    // 5. Look at what was generated for the best design.
    let opts = CompileOptions::new(&[("n", n_val)])
        .tiles(&[("n", 8192)])
        .opt(OptLevel::Metapipelined);
    let compiled = compile(&prog, &opts).expect("compiles");
    println!(
        "\n=== hardware design ===\n{}",
        compiled.design.to_diagram()
    );
    println!("=== emitted MaxJ ===\n{}", compiled.emit_hgl());
}
