//! Matrix multiplication with a tile-size sweep: how tile choice trades
//! on-chip memory for DRAM traffic and cycles (the design-space knob the
//! paper leaves to the user, §4 Discussion).
//!
//! Run with: `cargo run --release --example gemm`

use pphw::{compile, CompileOptions, OptLevel};
use pphw_apps::simple::{gemm_golden, gemm_inputs, gemm_program};
use pphw_ir::size::Size;
use pphw_sim::SimConfig;

fn main() {
    let prog = gemm_program();
    let sizes = [("m", 256), ("n", 256), ("p", 256)];
    let env = Size::env(&sizes);
    let sim = SimConfig::default();

    println!("gemm 256x256x256 — tile size sweep (metapipelined)\n");
    println!(
        "{:<10} {:>12} {:>14} {:>16} {:>12}",
        "tile", "cycles", "DRAM words", "on-chip bytes", "vs 16-tile"
    );
    let mut first = 0u64;
    for b in [16i64, 32, 64, 128] {
        let opts = CompileOptions::new(&sizes)
            .tiles(&[("m", b), ("n", b), ("p", b)])
            .opt(OptLevel::Metapipelined);
        let compiled = compile(&prog, &opts).expect("compiles");
        let report = compiled.simulate(&sim).expect("simulates");
        if first == 0 {
            first = report.cycles;
        }
        println!(
            "{:<10} {:>12} {:>14} {:>16} {:>11.2}x",
            format!("{b}x{b}x{b}"),
            report.cycles,
            report.dram_words,
            compiled.design.on_chip_bytes(),
            first as f64 / report.cycles as f64
        );
    }

    // Functional check at one configuration.
    let opts = CompileOptions::new(&sizes)
        .tiles(&[("m", 64), ("n", 64), ("p", 64)])
        .opt(OptLevel::Metapipelined);
    let compiled = compile(&prog, &opts).expect("compiles");
    let inputs = gemm_inputs(&env, 3);
    let got = compiled.execute(inputs.clone()).expect("executes");
    let want = gemm_golden(&inputs, &env);
    assert!(got[0].approx_eq(&want[0], 1e-3), "gemm result mismatch");
    println!("\nfunctional check vs plain-Rust reference: OK");

    // Show the interchanged IR (Table 3).
    println!(
        "\n=== tiled + interchanged IR (Table 3) ===\n{}",
        pphw_ir::pretty::print_program(&compiled.program)
    );
}
