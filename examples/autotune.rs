//! Automated tile-size selection — the paper's stated future work
//! ("automated tile size selection using modeling and design space
//! exploration", §4 Discussion) implemented as a search over dividing
//! tile sizes ranked by simulated cycles.
//!
//! Run with: `cargo run --release --example autotune`

use pphw::autotune::autotune;
use pphw::CompileOptions;
use pphw_apps::simple::gemm_program;
use pphw_sim::SimConfig;

fn main() {
    let prog = gemm_program();
    let base = CompileOptions::new(&[("m", 256), ("n", 256), ("p", 256)]);
    let sim = SimConfig::default();
    let result = autotune(&prog, &base, &["m", "n", "p"], &sim, 128).expect("tuning succeeds");

    println!(
        "gemm 256x256x256 — tile-size design space (top 10 of {} evaluated, {} skipped)\n",
        result.evaluated.len(),
        result.skipped
    );
    println!("{:<24} {:>12} {:>16}", "tiles", "cycles", "on-chip bytes");
    for c in result.evaluated.iter().take(10) {
        let tiles: Vec<String> = c.tiles.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "{:<24} {:>12} {:>16}",
            tiles.join(" "),
            c.cycles,
            c.on_chip_bytes
        );
    }
    let best: Vec<String> = result
        .best
        .tiles
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    println!(
        "\nbest: {} at {} cycles",
        best.join(" "),
        result.best.cycles
    );
}
