//! The paper's running example end to end: k-means clustering (Figures 3,
//! 4, 5 and 6).
//!
//! Shows the fused PPL program, the strip-mined and interchanged forms,
//! the Figure 5c memory-traffic table, the generated hardware (Figure 6),
//! and the three-level performance comparison — all on one workload.
//!
//! Run with: `cargo run --release --example kmeans [--hw]`

use pphw::{compile, evaluate, CompileOptions, OptLevel};
use pphw_apps::kmeans::{kmeans_golden, kmeans_inputs, kmeans_program};
use pphw_ir::pretty::print_program;
use pphw_ir::size::Size;
use pphw_sim::SimConfig;
use pphw_transform::cost::analyze_cost;
use pphw_transform::{tile_program, tile_program_no_interchange, TileConfig};

fn main() {
    let hw_only = std::env::args().any(|a| a == "--hw");
    let prog = kmeans_program();
    let sizes = [("n", 16384), ("k", 16), ("d", 32)];
    let tiles = [("n", 512), ("k", 8)];
    let env = Size::env(&sizes);
    let cfg = TileConfig::new(&tiles, &sizes);

    if !hw_only {
        println!("=== Figure 4: fused k-means in PPL ===");
        println!("{}", print_program(&prog));

        let strip = tile_program_no_interchange(&prog, &cfg).expect("strip mines");
        println!("=== Figure 5a: strip mined ===\n{}", print_program(&strip));

        let inter = tile_program(&prog, &cfg).expect("tiles");
        println!(
            "=== Figure 5b: split + interchanged ===\n{}",
            print_program(&inter)
        );

        println!("=== Figure 5c: memory traffic and on-chip storage ===");
        println!("fused:\n{}", analyze_cost(&prog).to_table(&env));
        println!("strip mined:\n{}", analyze_cost(&strip).to_table(&env));
        println!("interchanged:\n{}", analyze_cost(&inter).to_table(&env));
    }

    // Figure 6: the generated hardware.
    let opts = CompileOptions::new(&sizes).tiles(&tiles);
    let compiled = compile(&prog, &opts.clone().opt(OptLevel::Metapipelined)).expect("compiles");
    println!(
        "=== Figure 6: k-means hardware ===\n{}",
        compiled.design.to_diagram()
    );

    // Functional check against the plain-Rust implementation.
    let inputs = kmeans_inputs(&env, 7);
    let got = compiled.execute(inputs.clone()).expect("executes");
    let want = kmeans_golden(&inputs, &env);
    assert!(
        got[0].approx_eq(&want[0], 1e-3),
        "compiled k-means diverged from reference"
    );
    println!("functional check vs plain-Rust reference: OK");

    // Figure 7 (k-means column): the three-level comparison.
    let eval = evaluate(&prog, &opts, &SimConfig::default()).expect("evaluates");
    println!("\n=== Figure 7 (kmeans) ===\n{}", eval.to_table());
}
