#!/usr/bin/env bash
# Full offline CI gate: build, test, formatting, lints.
# The workspace has no registry dependencies, so --offline must always work.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== static-analysis lint gate (all six benchmarks, every stage, zero diagnostics)"
cargo run --release --offline -p pphw-bench --bin verify -- --max-severity none
cargo run --release --offline -p pphw-bench --bin verify -- --flow --json > target/verify-report.json
python3 - <<'EOF'
import json
with open("target/verify-report.json") as f:
    report = json.load(f)
assert report["error_count"] == 0, f"verify gate found diagnostics: {report}"
assert report["warning_count"] == 0, f"verify gate found warnings: {report}"
runs = report["runs"]
benches = {r["bench"] for r in runs}
assert len(benches) == 6, f"expected six benchmarks, saw {sorted(benches)}"
assert all(r["report"]["error_count"] == 0 for r in runs), report
# Flow gate: every compiled design exposes a predicted bottleneck, every
# channel holds the two slots full overlap needs, and capacity inference
# is the identity (the generator already sizes minimally).
flows = [r for r in runs if "flow" in r]
assert flows, "no flow views in the report"
for r in flows:
    f = r["flow"]
    assert f["inferred"] == [], f"{r['bench']} [{r['stage']}]: non-minimal depths: {f}"
    for c in f["channels"]:
        assert c["slots"] >= 2, f"{r['bench']} [{r['stage']}]: undersized channel: {c}"
    if f["channels"]:
        assert f["bottleneck"], f"{r['bench']} [{r['stage']}]: no bottleneck: {f}"
print(f"verify gate OK: {len(runs)} stages across {len(benches)} benchmarks, "
      f"0 diagnostics, {len(flows)} flow-clean designs")
EOF

echo "== flow mutant gate (seeded undersized channels must raise PPHW04x and stall)"
cargo test -q --offline --test verify flow_family_mutants_raise_their_stable_codes
cargo test -q --offline --test flow_crosscheck \
  undersized_channels_are_flagged_statically_and_stall_dynamically

echo "== differential sweep with the per-pass verifier forced on"
PPHW_VERIFY=1 cargo test -q --offline --test differential gemm_differential
PPHW_VERIFY=1 cargo test -q --offline --test verify deep_verifier_runs_after_every_tiling_pass

echo "== dse smoke (tiny space, 2 threads)"
cargo run --release --offline -p pphw-bench --bin dse -- --quick --threads 2

echo "== dse guided smoke (model-guided slice, <= 30% of the space simulated)"
cargo run --release --offline -p pphw-bench --bin dse -- \
  --bench sumrows --threads 2 --strategy guided \
  --sample 8 --top-k 8 --explore 2 --max-simulated-frac 0.3

echo "== dse shard-merge gate (3 shards, merged cache, bit-identical reports)"
rm -f target/ci-shard*.pphwc* target/ci-merged.pphwc* \
      target/ci-dse-merged*.json target/ci-dse-unsharded*.json
for i in 0 1 2; do
  cargo run --release --offline -p pphw-bench --bin dse -- \
    --quick --threads 2 --shard "$i/3" --cache "target/ci-shard$i.pphwc"
done
cargo run --release --offline -p pphw-bench --bin dse -- \
  --cache target/ci-merged.pphwc \
  --merge-cache target/ci-shard0.pphwc target/ci-shard1.pphwc target/ci-shard2.pphwc
cargo run --release --offline -p pphw-bench --bin dse -- \
  --quick --threads 2 --cache target/ci-merged.pphwc \
  --json target/ci-dse-merged.json | tee target/ci-dse-merged.log
grep -q "eval hits / 0 misses" target/ci-dse-merged.log \
  || { echo "shard-merge gate: merged cache had misses — shards did not cover the space"; exit 1; }
cargo run --release --offline -p pphw-bench --bin dse -- \
  --quick --threads 2 --json target/ci-dse-unsharded.json
for f in target/ci-dse-merged*.json; do
  u="${f/ci-dse-merged/ci-dse-unsharded}"
  # Cache hit/miss counters legitimately differ (merged cache vs cold);
  # everything else — winners, rankings, stats — must be bit-identical.
  mask='s/"cache_hits":[0-9]*,"cache_misses":[0-9]*/"cache_hits":0,"cache_misses":0/'
  diff <(sed "$mask" "$f") <(sed "$mask" "$u") \
    || { echo "shard-merge gate: $f differs from unsharded $u"; exit 1; }
done

echo "== perf smoke (two-level cache: second run must be warm and compile-free)"
rm -f target/perf-eval-cache.pphwc BENCH_dse.json
cargo run --release --offline -p pphw-bench --bin perf -- --quick
cargo run --release --offline -p pphw-bench --bin perf -- --quick
python3 - <<'EOF'
import json
with open("BENCH_dse.json") as f:
    report = json.load(f)
assert report["reports_bit_identical"], "cached sweep reports diverged"
warm = {run["name"]: run for run in report["runs"]}["persistent_t1"]
assert warm["eval_hits"] > 0, f"warm run had no cache hits: {warm}"
assert warm["eval_misses"] == 0, f"warm run missed the cache: {warm}"
assert warm["design_builds"] == 0, f"warm run recompiled designs: {warm}"
print(f"perf smoke OK: warm run hit {warm['eval_hits']}/{warm['eval_hits']}, 0 recompiles")
EOF

echo "== fault-injection sweep (self-checking: determinism, inertness, monotonicity)"
cargo run --release --offline -p pphw-bench --bin faults

echo "== robustness fuzz smoke (fresh seed, never-panic property)"
PPHW_PROP_SEED=0xC1C1C1C1 PPHW_PROP_CASES=64 \
  cargo test -q --offline --test robustness fuzzed_pipeline_returns_errors_never_panics

echo "== frontend corpus gate (every examples/*.ppl parses and verifies clean)"
shopt -s nullglob
ppl_files=(examples/*.ppl)
[ "${#ppl_files[@]}" -ge 6 ] || { echo "corpus gate: expected >= 6 .ppl files, found ${#ppl_files[@]}"; exit 1; }
for f in "${ppl_files[@]}"; do
  cargo run --release --offline -p pphw-bench --bin parse -- "$f"
done

echo "== frontend fuzz smoke (parser never panics; quick seeded pass)"
PPHW_PROP_SEED=0xF0F0F0F0 PPHW_PROP_CASES=64 \
  cargo test -q --offline --test frontend_fuzz

echo "== serve smoke (daemon on ephemeral port, mixed batch, clean shutdown)"
rm -f target/serve-addr.txt
cargo build --release --offline -p pphw-server --bin serve
./target/release/serve --addr 127.0.0.1:0 --print-addr > target/serve-addr.txt &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" target/serve-addr.txt 2>/dev/null && break
  sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^listening on //p' target/serve-addr.txt)
[ -n "$SERVE_ADDR" ] || { echo "serve smoke: daemon never reported its address"; kill "$SERVE_PID"; exit 1; }
python3 - "$SERVE_ADDR" <<'EOF'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
rfile = sock.makefile("r", encoding="utf-8")

def call(obj):
    sock.sendall((json.dumps(obj) + "\n").encode())
    return json.loads(rfile.readline())

# compile
r = call({"id": 1, "method": "compile", "bench": "gemm",
          "sizes": {"m": 16, "n": 16, "p": 16}, "tiles": {"m": 8, "n": 8}, "inner_par": 4})
assert r["ok"] and r["result"]["on_chip_bytes"] > 0, r

# verify with spanned diagnostics (bad source must be a typed EPPL error)
r = call({"id": 2, "method": "verify", "source": "prog nope {"})
assert not r["ok"] and r["error"]["code"] == "EPPL", r
assert r["error"]["diagnostics"][0]["span"]["line"] == 1, r

# simulate
r = call({"id": 3, "method": "simulate", "bench": "sumrows", "sizes": {"m": 16, "n": 16}})
assert r["ok"] and r["result"]["cycles"] > 0, r

# duplicate in-flight pair: pipeline two identical requests in one write,
# then read both — the dedup counter must see the pair.
dup = json.dumps({"id": 4, "method": "simulate", "bench": "outerprod",
                  "sizes": {"m": 8, "n": 8}, "inner_par": 2})
sock.sendall((dup + "\n" + dup + "\n").encode())
a, b = json.loads(rfile.readline()), json.loads(rfile.readline())
assert a == b and a["ok"], (a, b)

# over-budget request degrades to the typed budget error
r = call({"id": 5, "method": "simulate", "bench": "sumrows",
          "sizes": {"m": 16, "n": 16}, "cycle_budget": 1})
assert not r["ok"] and r["error"]["code"] == "EBUDGET", r

stats = call({"id": 6, "method": "stats"})
assert stats["ok"] and stats["result"]["dedup_hits"] >= 1, stats

bye = call({"id": 7, "method": "shutdown"})
assert bye["ok"] and bye["result"]["shutting_down"], bye
print(f"serve smoke OK: {stats['result']}")
EOF
wait "$SERVE_PID" || { echo "serve smoke: daemon exited non-zero"; exit 1; }

echo "== serve load harness (cold/warm phases, warm compile-free, dedup > 0)"
rm -f BENCH_serve.json
cargo run --release --offline -p pphw-bench --bin loadgen -- --quick
python3 - <<'EOF'
import json
with open("BENCH_serve.json") as f:
    report = json.load(f)
phases = {p["phase"]: p for p in report["phases"]}
for p in phases.values():
    assert p["throughput_rps"] > 0, p
    lat = p["latency_us"]
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"], lat
assert phases["warm"]["design_builds"] == 0, f"warm phase recompiled: {phases['warm']}"
assert report["dedup_hits"] > 0, f"dedup never fired: {report}"
print(f"loadgen OK: cold {phases['cold']['throughput_rps']} rps -> "
      f"warm {phases['warm']['throughput_rps']} rps, "
      f"{report['dedup_hits']} dedup hits, 0 warm compiles")
EOF

echo "== chaos smoke (seeded fault proxy, typed outcomes, kill -9 recovery gate)"
rm -f target/chaos-cache.pphwc target/chaos-cache.pphwc.jnl \
      target/chaos-addr.txt target/chaos-addr2.txt \
      BENCH_chaos.json BENCH_chaos_recovery.json
./target/release/serve --addr 127.0.0.1:0 --cache target/chaos-cache.pphwc \
  --cache-sync-every 1 --print-addr > target/chaos-addr.txt &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" target/chaos-addr.txt 2>/dev/null && break
  sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^listening on //p' target/chaos-addr.txt)
[ -n "$SERVE_ADDR" ] || { echo "chaos smoke: daemon never reported its address"; kill "$SERVE_PID"; exit 1; }
cargo run --release --offline -p pphw-bench --bin loadgen -- \
  --chaos --quick --chaos-seed 42 --addr "$SERVE_ADDR"
# Hard crash: no shutdown, no snapshot save — the journal is all that survives.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
[ -s target/chaos-cache.pphwc.jnl ] || { echo "chaos smoke: journal empty after kill -9"; exit 1; }
./target/release/serve --addr 127.0.0.1:0 --cache target/chaos-cache.pphwc \
  --print-addr > target/chaos-addr2.txt &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" target/chaos-addr2.txt 2>/dev/null && break
  sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^listening on //p' target/chaos-addr2.txt)
[ -n "$SERVE_ADDR" ] || { echo "chaos smoke: restarted daemon never reported its address"; kill "$SERVE_PID"; exit 1; }
cargo run --release --offline -p pphw-bench --bin loadgen -- \
  --warm-check --quick --addr "$SERVE_ADDR" --shutdown
wait "$SERVE_PID" || { echo "chaos smoke: restarted daemon exited non-zero"; exit 1; }
python3 - <<'EOF'
import json
with open("BENCH_chaos.json") as f:
    chaos = json.load(f)
o = chaos["outcomes"]
assert o["exhausted"] == 0, f"chaos gate: untyped failures: {o}"
assert o["ok"] > 0, o
flt = chaos["faults"]
injected = (flt["disconnects"] + flt["corruptions"] + flt["duplicates"]
            + flt["trickles"] + flt["delays"])
assert injected > 0, f"chaos gate: no faults injected, the run proved nothing: {flt}"
with open("BENCH_chaos_recovery.json") as f:
    rec = json.load(f)
assert rec["eval_misses"] == 0, f"recovery gate: journal lost evaluations: {rec}"
# verify requests compile their design-level analysis target once per
# daemon life (<= 3 distinct benches in the chaos population); simulate
# replays must stay compile-free.
assert rec["design_builds"] <= 3, f"recovery gate: designs recompiled: {rec}"
assert rec["eval_hits"] > 0, rec
print(f"chaos smoke OK: {o['ok']} ok / {o['typed_error']} typed errors / 0 untyped "
      f"through {injected} injected faults; after kill -9: {rec['eval_hits']} hits, "
      f"0 misses, 0 rebuilds")
EOF

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
