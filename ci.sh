#!/usr/bin/env bash
# Full offline CI gate: build, test, formatting, lints.
# The workspace has no registry dependencies, so --offline must always work.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== static-analysis lint gate (all six benchmarks, every stage, zero diagnostics)"
cargo run --release --offline -p pphw-bench --bin verify
cargo run --release --offline -p pphw-bench --bin verify -- --json > target/verify-report.json
python3 - <<'EOF'
import json
with open("target/verify-report.json") as f:
    report = json.load(f)
assert report["error_count"] == 0, f"verify gate found diagnostics: {report}"
runs = report["runs"]
benches = {r["bench"] for r in runs}
assert len(benches) == 6, f"expected six benchmarks, saw {sorted(benches)}"
assert all(r["report"]["error_count"] == 0 for r in runs), report
print(f"verify gate OK: {len(runs)} stages across {len(benches)} benchmarks, 0 diagnostics")
EOF

echo "== differential sweep with the per-pass verifier forced on"
PPHW_VERIFY=1 cargo test -q --offline --test differential gemm_differential
PPHW_VERIFY=1 cargo test -q --offline --test verify deep_verifier_runs_after_every_tiling_pass

echo "== dse smoke (tiny space, 2 threads)"
cargo run --release --offline -p pphw-bench --bin dse -- --quick --threads 2

echo "== perf smoke (two-level cache: second run must be warm and compile-free)"
rm -f target/perf-eval-cache.pphwc BENCH_dse.json
cargo run --release --offline -p pphw-bench --bin perf -- --quick
cargo run --release --offline -p pphw-bench --bin perf -- --quick
python3 - <<'EOF'
import json
with open("BENCH_dse.json") as f:
    report = json.load(f)
assert report["reports_bit_identical"], "cached sweep reports diverged"
warm = {run["name"]: run for run in report["runs"]}["persistent_t1"]
assert warm["eval_hits"] > 0, f"warm run had no cache hits: {warm}"
assert warm["eval_misses"] == 0, f"warm run missed the cache: {warm}"
assert warm["design_builds"] == 0, f"warm run recompiled designs: {warm}"
print(f"perf smoke OK: warm run hit {warm['eval_hits']}/{warm['eval_hits']}, 0 recompiles")
EOF

echo "== fault-injection sweep (self-checking: determinism, inertness, monotonicity)"
cargo run --release --offline -p pphw-bench --bin faults

echo "== robustness fuzz smoke (fresh seed, never-panic property)"
PPHW_PROP_SEED=0xC1C1C1C1 PPHW_PROP_CASES=64 \
  cargo test -q --offline --test robustness fuzzed_pipeline_returns_errors_never_panics

echo "== frontend corpus gate (every examples/*.ppl parses and verifies clean)"
shopt -s nullglob
ppl_files=(examples/*.ppl)
[ "${#ppl_files[@]}" -ge 6 ] || { echo "corpus gate: expected >= 6 .ppl files, found ${#ppl_files[@]}"; exit 1; }
for f in "${ppl_files[@]}"; do
  cargo run --release --offline -p pphw-bench --bin parse -- "$f"
done

echo "== frontend fuzz smoke (parser never panics; quick seeded pass)"
PPHW_PROP_SEED=0xF0F0F0F0 PPHW_PROP_CASES=64 \
  cargo test -q --offline --test frontend_fuzz

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
