#!/usr/bin/env bash
# Full offline CI gate: build, test, formatting, lints.
# The workspace has no registry dependencies, so --offline must always work.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== dse smoke (tiny space, 2 threads)"
cargo run --release --offline -p pphw-bench --bin dse -- --quick --threads 2

echo "== fault-injection sweep (self-checking: determinism, inertness, monotonicity)"
cargo run --release --offline -p pphw-bench --bin faults

echo "== robustness fuzz smoke (fresh seed, never-panic property)"
PPHW_PROP_SEED=0xC1C1C1C1 PPHW_PROP_CASES=64 \
  cargo test -q --offline --test robustness fuzzed_pipeline_returns_errors_never_panics

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
