//! Parser fuzz smoke: `parse_program` must never panic — it either
//! produces a program or a list of spanned errors. Three input regimes:
//! seeded arbitrary text, token soup drawn from the PPL vocabulary, and
//! token-level mutations of the valid corpus (emitted benchmarks plus the
//! checked-in `examples/*.ppl`). Failures shrink to a minimal source
//! string before reporting.
//!
//! Case counts honor `PPHW_PROP_CASES`/`PPHW_PROP_SEED`, so ci.sh can run
//! a quick pass and a nightly can go deep.

use std::path::PathBuf;

use pphw_frontend::parse_program;
use pphw_ir::pretty::emit_program;
use pphw_testkit::prop::Check;
use pphw_testkit::rng::Rng;

/// PPL token vocabulary for soup and mutation inserts.
const VOCAB: &[&str] = &[
    "program",
    "input",
    "let",
    "return",
    "yield",
    "map",
    "multiFold",
    "fold",
    "flatMap",
    "groupByFold",
    "if",
    "else",
    "true",
    "false",
    "inf",
    "nan",
    "min",
    "max",
    "sqrt",
    "tuple",
    "size",
    "acc",
    "pre",
    "update",
    "combine",
    "merge",
    "key",
    "splat",
    "reuse",
    "slice",
    "copy",
    "Float",
    "Int",
    "Bool",
    "Dict",
    "x",
    "y",
    "i",
    "d",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ":",
    ":+",
    "=",
    "==",
    "=>",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    "<=",
    "&&",
    "||",
    "!",
    ".",
    "@",
    "?",
    "0",
    "1",
    "42",
    "2.5",
    "1e9",
    "_1",
];

/// The valid corpus: every builder benchmark's canonical text.
fn corpus() -> Vec<String> {
    pphw_apps::all_benchmarks()
        .iter()
        .map(|s| emit_program(&(s.program)()))
        .collect()
}

/// The program must not panic on `src`; both outcomes are acceptable.
fn parses_or_errors(src: &str) -> Result<(), String> {
    match std::panic::catch_unwind(|| parse_program(src, "fuzz.ppl")) {
        Ok(_) => Ok(()),
        Err(_) => Err(format!("parse_program panicked on:\n{src}")),
    }
}

/// Shrinks a failing source string: drop lines, halve, drop char chunks.
fn shrink_src(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let lines: Vec<&str> = src.lines().collect();
    if lines.len() > 1 {
        for skip in 0..lines.len() {
            let keep: Vec<&str> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| *l)
                .collect();
            out.push(keep.join("\n"));
        }
    }
    let chars: Vec<char> = src.chars().collect();
    if chars.len() > 1 {
        out.push(chars[..chars.len() / 2].iter().collect());
        out.push(chars[chars.len() / 2..].iter().collect());
        // Drop a middle quarter.
        let (a, b) = (chars.len() / 4, chars.len() / 2);
        let mut mid: String = chars[..a].iter().collect();
        mid.extend(chars[b..].iter());
        out.push(mid);
    }
    out
}

#[test]
fn arbitrary_text_never_panics() {
    Check::new("frontend_fuzz_arbitrary").cases(96).run_shrink(
        |rng| {
            let len = rng.gen_range(0usize..400);
            let mut s = String::new();
            for _ in 0..len {
                let c = match rng.gen_range(0u32..10) {
                    0 => char::from_u32(rng.gen_range(0u32..0xD800)).unwrap_or('?'),
                    1..=3 => char::from(rng.gen_range(32u32..126) as u8),
                    _ => {
                        s.push_str(VOCAB[rng.gen_range(0usize..VOCAB.len())]);
                        ' '
                    }
                };
                s.push(c);
            }
            s
        },
        |s| shrink_src(s),
        |src| parses_or_errors(src),
    );
}

#[test]
fn token_soup_never_panics() {
    Check::new("frontend_fuzz_soup").cases(96).run_shrink(
        |rng| {
            let len = rng.gen_range(1usize..120);
            let mut s = String::from("program p(d) {\n");
            for _ in 0..len {
                s.push_str(VOCAB[rng.gen_range(0usize..VOCAB.len())]);
                s.push(if rng.gen_bool(0.2) { '\n' } else { ' ' });
            }
            s.push('}');
            s
        },
        |s| shrink_src(s),
        |src| parses_or_errors(src),
    );
}

/// A token-level mutation of valid text: delete, duplicate, or replace a
/// whitespace-delimited token, or splice a random vocabulary token in.
fn mutate(rng: &mut Rng, src: &str) -> String {
    let toks: Vec<&str> = src.split_inclusive(char::is_whitespace).collect();
    if toks.is_empty() {
        return src.to_string();
    }
    let mut toks: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
    for _ in 0..rng.gen_range(1usize..4) {
        let at = rng.gen_range(0usize..toks.len());
        match rng.gen_range(0u32..4) {
            0 => {
                toks.remove(at);
            }
            1 => {
                let t = toks[at].clone();
                toks.insert(at, t);
            }
            2 => toks[at] = format!("{} ", VOCAB[rng.gen_range(0usize..VOCAB.len())]),
            _ => toks.insert(
                at,
                format!("{} ", VOCAB[rng.gen_range(0usize..VOCAB.len())]),
            ),
        }
        if toks.is_empty() {
            break;
        }
    }
    toks.concat()
}

#[test]
fn mutated_corpus_never_panics() {
    let mut corpus = corpus();
    // Include the checked-in examples so the fuzzer tracks the real files.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for e in entries.filter_map(Result::ok) {
            if e.path().extension().is_some_and(|x| x == "ppl") {
                if let Ok(src) = std::fs::read_to_string(e.path()) {
                    corpus.push(src);
                }
            }
        }
    }
    assert!(corpus.len() >= 6, "fuzz corpus went missing");
    Check::new("frontend_fuzz_mutated").cases(128).run_shrink(
        |rng| {
            let base = &corpus[rng.gen_range(0usize..corpus.len())];
            mutate(rng, base)
        },
        |s| shrink_src(s),
        |src| parses_or_errors(src),
    );
}
