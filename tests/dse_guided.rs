//! Acceptance tests for model-guided, sharded design-space exploration
//! on the real compile+simulate pipeline (synthetic-evaluator unit tests
//! live in `pphw-dse` itself).
//!
//! The guarantees checked here, for **every one of the six Table 5
//! benchmarks**:
//!
//! 1. **Guided optimality** — for each of the three objective modes
//!    (min-cycles, cycles-then-area, fastest-under-area-cap), the guided
//!    search returns exactly the winner an exhaustive sweep returns,
//!    while simulating strictly fewer points.
//! 2. **Thread independence** — the guided report is identical on 1 and
//!    4 worker threads.
//! 3. **Shard-merge equivalence** — splitting a guided search into
//!    {1, 3, 7} shards, merging the per-shard evaluation caches, and
//!    re-running unsharded over the merged cache reproduces the direct
//!    unsharded report with zero cache misses.
//!
//! Spaces are built over shrunken workload sizes (every dimension capped
//! at 64) so the whole matrix stays fast in debug builds; one evaluation
//! cache is shared across all exhaustive/guided runs so each unique
//! configuration is compiled and simulated exactly once.

use std::sync::Arc;

use pphw::dse::{explore_with_caches, DesignArtifact};
use pphw::CompileOptions;
use pphw_apps::{all_benchmarks, BenchSpec};
use pphw_dse::cache::{DesignCache, EvalCache};
use pphw_dse::{
    pow2_divisors, DseConfig, DseReport, GuidedConfig, Objective, SearchSpace, Shard, Strategy,
};
use pphw_sim::SimConfig;

/// Workload sizes capped at 64 per dimension: big enough that tile and
/// parallelism choices matter, small enough for debug-build simulation.
fn small_sizes(spec: &BenchSpec) -> Vec<(&'static str, i64)> {
    (spec.sizes)()
        .into_iter()
        .map(|(k, v)| (k, v.min(64)))
        .collect()
}

/// Up to three power-of-two tile candidates per tuned dimension, two
/// substrate variants, three parallelism factors.
fn small_space(spec: &BenchSpec, sizes: &[(&'static str, i64)]) -> SearchSpace {
    let mut space = SearchSpace::new(sizes);
    for (dim, _) in (spec.tiles)() {
        let n = sizes
            .iter()
            .find(|(k, _)| *k == dim)
            .map(|(_, v)| *v)
            .expect("tile dim has a size");
        let mut cands = pow2_divisors(n);
        cands.truncate(3);
        space = space.with_tile_candidates(dim, &cands);
    }
    space.with_inner_pars(&[2, 4, 8, 16]).with_sim_variants(&[
        ("max4", SimConfig::default()),
        ("fast-clock", SimConfig::default().with_clock_mhz(200.0)),
        ("low-bw", SimConfig::default().with_dram_gbps(38.4)),
    ])
}

fn explore(
    spec: &BenchSpec,
    sizes: &[(&'static str, i64)],
    space: &SearchSpace,
    cfg: &DseConfig,
    evals: &EvalCache,
    designs: &Arc<DesignCache<DesignArtifact>>,
) -> DseReport {
    let base = CompileOptions::new(sizes);
    explore_with_caches(
        &(spec.program)(),
        &base,
        space,
        cfg,
        evals,
        Arc::clone(designs),
    )
    .unwrap_or_else(|e| panic!("{}: search failed: {e}", spec.name))
}

/// Guided parameters scaled to the space: roughly a sixth of the points
/// calibrate the model and a third are measured from the top of the
/// ranking, so every space — the 36-point 1-dimension ones and the
/// 324-point 3-dimension ones alike — is genuinely subsampled while
/// leaving margin for near-ties the model cannot order (substrate
/// siblings whose true cycles differ by a fraction of a percent). The
/// aggressive ≤10% slice is exercised on the ≥10^5-point space by the
/// `perf` benchmark, where ties are far apart in the ranking.
fn guided_for(space_len: usize) -> Strategy {
    Strategy::Guided(GuidedConfig {
        sample: (space_len / 6).max(8),
        top_k: (space_len / 3).max(8),
        explore: 4,
        ..GuidedConfig::default()
    })
}

/// The report identity that must survive strategy, threading, and
/// sharding: the winner plus the full measured ranking.
fn ranking(r: &DseReport) -> Vec<(String, u64, f64)> {
    r.evaluated
        .iter()
        .map(|p| (p.label.clone(), p.cycles, p.area_score))
        .collect()
}

#[test]
fn guided_matches_exhaustive_on_every_benchmark_and_objective() {
    let evals = EvalCache::new();
    let designs: Arc<DesignCache<DesignArtifact>> = Arc::new(DesignCache::new());
    for spec in &all_benchmarks() {
        let sizes = small_sizes(spec);
        let space = small_space(spec, &sizes);
        let base_cfg = DseConfig {
            threads: 1,
            ..DseConfig::default()
        };

        // Exhaustive under the default objective also calibrates the
        // area cap: the median measured area, so the cap genuinely
        // excludes designs.
        let full = explore(spec, &sizes, &space, &base_cfg, &evals, &designs);
        let mut areas: Vec<f64> = full.evaluated.iter().map(|p| p.area_score).collect();
        areas.sort_by(f64::total_cmp);
        let cap = areas[areas.len() / 2];

        let objectives = [
            Objective::MinCycles,
            Objective::CyclesThenArea,
            Objective::FastestUnderAreaCap { area_cap: cap },
        ];
        for objective in objectives {
            let exhaustive = explore(
                spec,
                &sizes,
                &space,
                &DseConfig {
                    objective,
                    ..base_cfg
                },
                &evals,
                &designs,
            );
            let guided_cfg = DseConfig {
                strategy: guided_for(space.len()),
                objective,
                ..base_cfg
            };
            let g1 = explore(spec, &sizes, &space, &guided_cfg, &evals, &designs);
            assert_eq!(
                (g1.best.label.clone(), g1.best.cycles),
                (exhaustive.best.label.clone(), exhaustive.best.cycles),
                "{}: guided missed the exhaustive optimum under {objective:?}",
                spec.name
            );
            assert!(
                g1.stats.simulated < exhaustive.stats.simulated,
                "{}: guided simulated {} of {} — it skipped nothing",
                spec.name,
                g1.stats.simulated,
                exhaustive.stats.simulated
            );
            assert!(g1.stats.sampled > 0, "{}: no calibration sample", spec.name);

            // Thread independence: the whole guided report, not just the
            // winner, is identical on 4 workers.
            let g4 = explore(
                spec,
                &sizes,
                &space,
                &DseConfig {
                    threads: 4,
                    ..guided_cfg
                },
                &evals,
                &designs,
            );
            assert_eq!(
                ranking(&g1),
                ranking(&g4),
                "{}: thread-dependent",
                spec.name
            );
        }
    }
}

#[test]
fn sharded_guided_runs_merge_to_the_unsharded_report() {
    let designs: Arc<DesignCache<DesignArtifact>> = Arc::new(DesignCache::new());
    for spec in &all_benchmarks() {
        let sizes = small_sizes(spec);
        let space = small_space(spec, &sizes);
        let cfg = DseConfig {
            threads: 1,
            strategy: guided_for(space.len()),
            ..DseConfig::default()
        };
        let reference_evals = EvalCache::new();
        let reference = explore(spec, &sizes, &space, &cfg, &reference_evals, &designs);

        for count in [1u64, 3, 7] {
            // Each shard measures only what it owns (plus the replicated
            // calibration sample) into its own cold cache...
            let shard_caches: Vec<EvalCache> = (0..count)
                .map(|index| {
                    let evals = EvalCache::new();
                    let sharded = DseConfig {
                        shard: Some(Shard { index, count }),
                        ..cfg
                    };
                    // A shard may own no feasible survivor; its cache
                    // contribution is still valid.
                    let base = CompileOptions::new(&sizes);
                    let _ = explore_with_caches(
                        &(spec.program)(),
                        &base,
                        &space,
                        &sharded,
                        &evals,
                        Arc::clone(&designs),
                    );
                    evals
                })
                .collect();

            // ...the merged union replays the unsharded search without a
            // single new measurement.
            let merged = EvalCache::new();
            for c in &shard_caches {
                merged
                    .merge_from(c)
                    .unwrap_or_else(|e| panic!("{}: merge failed: {e}", spec.name));
            }
            let replay = explore(spec, &sizes, &space, &cfg, &merged, &designs);
            assert_eq!(
                merged.misses(),
                0,
                "{}: {count}-way merge left holes in the cache",
                spec.name
            );
            assert_eq!(
                (replay.best.label.clone(), replay.best.cycles),
                (reference.best.label.clone(), reference.best.cycles),
                "{}: {count}-way sharding changed the winner",
                spec.name
            );
            assert_eq!(
                ranking(&replay),
                ranking(&reference),
                "{}: {count}-way sharding changed the ranking",
                spec.name
            );
        }
    }
}
