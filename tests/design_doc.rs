//! Keeps DESIGN.md's diagnostic-code table in lockstep with
//! `DiagCode::all()`: the table is generated from the code, so a new
//! analyzer family cannot land without its documentation row.
//!
//! Regenerate with `PPHW_UPDATE_GOLDEN=1 cargo test --test design_doc`
//! after inspecting the new rows.

use std::fs;
use std::path::PathBuf;

use pphw_verify::DiagCode;

const HEADER: &str = "| Code | Meaning |\n|---|---|";

fn generated_table() -> String {
    let rows = DiagCode::all()
        .iter()
        .map(|c| format!("| `{}` | {} |", c.code(), c.summary()))
        .collect::<Vec<_>>()
        .join("\n");
    format!("{HEADER}\n{rows}")
}

#[test]
fn design_md_diagnostic_table_matches_diagcode_all() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md");
    let doc = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let start = doc
        .find(HEADER)
        .expect("DESIGN.md contains the `| Code | Meaning |` table");
    let body_start = start + HEADER.len();
    let table_len = doc[body_start..]
        .lines()
        .take_while(|l| l.is_empty() || l.starts_with('|'))
        .map(|l| l.len() + 1)
        .sum::<usize>()
        .saturating_sub(1);
    let current = doc[start..body_start + table_len].trim_end();

    let expected = generated_table();
    if std::env::var_os("PPHW_UPDATE_GOLDEN").is_some() {
        if current != expected {
            // Splice over the trimmed table only, so surrounding blank
            // lines survive the rewrite.
            let updated = format!(
                "{}{}{}",
                &doc[..start],
                expected,
                &doc[start + current.len()..]
            );
            fs::write(&path, updated).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        }
        return;
    }
    assert_eq!(
        current, expected,
        "DESIGN.md diagnostic table is stale — regenerate with \
         PPHW_UPDATE_GOLDEN=1 cargo test --test design_doc"
    );
}

#[test]
fn diagnostic_codes_are_unique_and_ordered() {
    let all = DiagCode::all();
    let codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
    let mut sorted = codes.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), codes.len(), "duplicate code");
    assert_eq!(sorted, codes, "DiagCode::all() must be in numeric order");
}
