//! Robustness acceptance tests for the hardened, panic-free pipeline:
//!
//! 1. **Fuzz sweep** — randomly built programs with adversarial sizes,
//!    tile configurations, simulation substrates, and fault models run
//!    through compile → simulate. Invalid inputs must come back as typed
//!    `Err`s; nothing may panic. Failing cases shrink to a minimal
//!    witness via the testkit property harness.
//! 2. **Fault-injection guarantees** on all six Table 5 benchmarks:
//!    same seed ⇒ bit-identical report; faulted runs are never faster
//!    than clean ones; an inert fault config reproduces the fault-free
//!    simulation exactly.
//! 3. **DSE resilience** — a sweep whose candidates include a substrate
//!    that cannot finish within its cycle budget completes anyway,
//!    lists the failures, and still returns the best healthy point,
//!    identically across thread counts.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pphw::{compile, CompileOptions, OptLevel};
use pphw_apps::all_benchmarks;
use pphw_dse::{DseConfig, SearchSpace};
use pphw_ir::builder::ProgramBuilder;
use pphw_ir::pattern::Init;
use pphw_ir::types::{DType, ScalarType};
use pphw_ir::Program;
use pphw_sim::{FaultConfig, SimConfig};
use pphw_testkit::prop::Check;
use pphw_testkit::Rng;

/// One fuzzed end-to-end configuration: a program shape plus adversarial
/// compile / simulate / fault knobs.
#[derive(Debug, Clone)]
struct FuzzCase {
    shape: u8,
    dim0: i64,
    dim1: i64,
    tile0: i64,
    tile1: i64,
    inner_par: u32,
    opt: u8,
    clock_mhz: f64,
    dram_gbps: f64,
    cycle_budget: u64,
    fault_seed: u64,
    jitter: u64,
    rate: f64,
    degrade_period: u64,
    degrade_window: u64,
    degrade_factor: f64,
    max_retries: u32,
}

/// Builds the program for a case: three small pattern families covering
/// map, map-of-fold, and a two-input elementwise kernel, including an
/// integer division (the classic hidden-panic site).
fn build_program(shape: u8) -> Program {
    match shape % 3 {
        0 => {
            let mut b = ProgramBuilder::new("fuzz_map");
            let d = b.size("d0");
            let x = b.input("x", DType::F32, vec![d.clone()]);
            let out = b.map(vec![d], |c, i| {
                c.mul(c.f32(2.0), c.read(x, vec![c.var(i[0])]))
            });
            b.finish(vec![out])
        }
        1 => {
            let mut b = ProgramBuilder::new("fuzz_sumrows");
            let m = b.size("d0");
            let n = b.size("d1");
            let x = b.input("x", DType::F32, vec![m.clone(), n.clone()]);
            let out = b.with_ctx(|c| {
                c.map(vec![m], |c, i| {
                    let i = i[0];
                    c.fold(
                        "rowsum",
                        vec![n.clone()],
                        vec![],
                        ScalarType::Prim(DType::F32),
                        Init::zeros(),
                        |c, j, acc| c.add(c.var(acc), c.read(x, vec![c.var(i), c.var(j[0])])),
                        |c, a, b2| c.add(c.var(a), c.var(b2)),
                    )
                })
            });
            b.finish(vec![out])
        }
        _ => {
            let mut b = ProgramBuilder::new("fuzz_zip");
            let d = b.size("d0");
            let x = b.input("x", DType::F32, vec![d.clone()]);
            let y = b.input("y", DType::F32, vec![d.clone()]);
            let out = b.map(vec![d], |c, i| {
                let xv = c.read(x, vec![c.var(i[0])]);
                let yv = c.read(y, vec![c.var(i[0])]);
                c.add(c.mul(xv.clone(), yv.clone()), xv)
            });
            b.finish(vec![out])
        }
    }
}

fn gen_case(rng: &mut Rng) -> FuzzCase {
    // Adversarial pools: zero, negative, indivisible, and absurdly large
    // values alongside healthy ones.
    let dims: &[i64] = &[-4, 0, 1, 3, 7, 64, 100, 4096, 1 << 40];
    let tiles: &[i64] = &[-2, 0, 1, 3, 16, 64, 1 << 33];
    let clocks: &[f64] = &[-1.0, 0.0, f64::NAN, 150.0, 150.0];
    let gbps: &[f64] = &[-3.0, 0.0, f64::INFINITY, 38.4, 38.4];
    let budgets: &[u64] = &[0, 1_000, 100_000, 1 << 53];
    let rates: &[f64] = &[-0.5, 0.0, 0.05, 0.99, 1.5, f64::NAN];
    let factors: &[f64] = &[0.5, 1.0, 1.5, f64::INFINITY];
    FuzzCase {
        shape: rng.gen_range(0u32..3) as u8,
        dim0: *rng.choose(dims),
        dim1: *rng.choose(dims),
        tile0: *rng.choose(tiles),
        tile1: *rng.choose(tiles),
        inner_par: [0u32, 1, 16, 64, 1024][rng.gen_range(0usize..5)],
        opt: rng.gen_range(0u32..3) as u8,
        clock_mhz: *rng.choose(clocks),
        dram_gbps: *rng.choose(gbps),
        cycle_budget: *rng.choose(budgets),
        fault_seed: rng.next_u64(),
        jitter: [0u64, 8, 64][rng.gen_range(0usize..3)],
        rate: *rng.choose(rates),
        degrade_period: [0u64, 1024, 4096][rng.gen_range(0usize..3)],
        degrade_window: [0u64, 256, 8192][rng.gen_range(0usize..3)],
        degrade_factor: *rng.choose(factors),
        max_retries: rng.gen_range(0u32..5),
    }
}

/// Shrink toward the simplest healthy-looking case so a failure witness
/// is readable.
fn shrink_case(c: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzCase)| {
        let mut s = c.clone();
        f(&mut s);
        out.push(s);
    };
    if c.dim0 != 64 {
        push(&|s| s.dim0 = 64);
    }
    if c.dim1 != 64 {
        push(&|s| s.dim1 = 64);
    }
    if c.tile0 != 16 {
        push(&|s| s.tile0 = 16);
    }
    if c.tile1 != 16 {
        push(&|s| s.tile1 = 16);
    }
    if c.inner_par != 16 {
        push(&|s| s.inner_par = 16);
    }
    if c.clock_mhz.to_bits() != 150.0f64.to_bits() {
        push(&|s| s.clock_mhz = 150.0);
    }
    if c.dram_gbps.to_bits() != 38.4f64.to_bits() {
        push(&|s| s.dram_gbps = 38.4);
    }
    if c.cycle_budget != 100_000 {
        push(&|s| s.cycle_budget = 100_000);
    }
    if c.rate != 0.0 || c.jitter != 0 || c.degrade_window != 0 {
        push(&|s| {
            s.rate = 0.0;
            s.jitter = 0;
            s.degrade_window = 0;
        });
    }
    out
}

/// Runs one case end to end. Returns `Err` only on a panic — typed
/// pipeline errors are the expected outcome for adversarial inputs.
fn run_case(c: &FuzzCase) -> Result<(), String> {
    let c = c.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let prog = build_program(c.shape);
        let sizes: Vec<(&str, i64)> = match c.shape % 3 {
            1 => vec![("d0", c.dim0), ("d1", c.dim1)],
            _ => vec![("d0", c.dim0)],
        };
        let tiles: Vec<(&str, i64)> = match c.shape % 3 {
            1 => vec![("d0", c.tile0), ("d1", c.tile1)],
            _ => vec![("d0", c.tile0)],
        };
        let opt = [OptLevel::Baseline, OptLevel::Tiled, OptLevel::Metapipelined][c.opt as usize];
        let opts = CompileOptions::new(&sizes)
            .tiles(&tiles)
            .inner_par(c.inner_par)
            .opt(opt);
        let compiled = match compile(&prog, &opts) {
            Ok(compiled) => compiled,
            Err(_) => return, // typed rejection is a pass
        };
        // Keep runaway-but-valid configurations bounded: the watchdog
        // must turn them into errors, and quickly enough to fuzz.
        let budget = if c.dim0.max(c.dim1) > 1 << 20 {
            c.cycle_budget.min(100_000)
        } else {
            c.cycle_budget
        };
        let sim = SimConfig::default()
            .with_clock_mhz(c.clock_mhz)
            .with_dram_gbps(c.dram_gbps)
            .with_cycle_budget(budget);
        let faults = FaultConfig::none()
            .with_seed(c.fault_seed)
            .with_latency_jitter(c.jitter)
            .with_burst_fail_rate(c.rate)
            .with_degradation(c.degrade_period, c.degrade_window, c.degrade_factor)
            .with_retry(c.max_retries, 16);
        let _ = compiled.simulate(&sim);
        let _ = compiled.simulate_with_faults(&sim, &faults);
    }))
    .map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic".into());
        format!("pipeline panicked: {msg}")
    })
}

#[test]
fn fuzzed_pipeline_returns_errors_never_panics() {
    Check::new("pipeline_never_panics")
        .cases(192)
        .run_shrink(gen_case, shrink_case, run_case);
}

#[allow(clippy::type_complexity)]
fn small_opts(name: &str) -> (Program, CompileOptions) {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .expect("benchmark");
    let (sizes, tiles): (Vec<(&str, i64)>, Vec<(&str, i64)>) = match name {
        "outerprod" => (vec![("m", 64), ("n", 64)], vec![("m", 16), ("n", 16)]),
        "sumrows" => (vec![("m", 64), ("n", 64)], vec![("m", 16), ("n", 64)]),
        "gemm" => (
            vec![("m", 32), ("n", 32), ("p", 32)],
            vec![("m", 8), ("n", 8), ("p", 8)],
        ),
        "tpchq6" => (vec![("n", 2048)], vec![("n", 256)]),
        "gda" => (vec![("n", 128), ("d", 16)], vec![("n", 32)]),
        "kmeans" => (
            vec![("n", 256), ("k", 8), ("d", 8)],
            vec![("n", 32), ("k", 4)],
        ),
        other => panic!("unknown {other}"),
    };
    ((spec.program)(), CompileOptions::new(&sizes).tiles(&tiles))
}

#[test]
fn fault_injection_is_deterministic_and_monotone_on_all_benchmarks() {
    let sim = SimConfig::default();
    let faults = FaultConfig::none()
        .with_seed(0xDEC0DE)
        .with_latency_jitter(24)
        .with_degradation(2048, 256, 1.5)
        .with_burst_fail_rate(0.05);
    for spec in all_benchmarks() {
        let (prog, opts) = small_opts(spec.name);
        let compiled =
            compile(&prog, &opts.opt(OptLevel::Metapipelined)).expect("benchmark compiles");
        let clean = compiled.simulate(&sim).expect("simulates");

        // Same seed ⇒ identical report, including the fault counters.
        let a = compiled
            .simulate_with_faults(&sim, &faults)
            .expect("simulates");
        let b = compiled
            .simulate_with_faults(&sim, &faults)
            .expect("simulates");
        assert_eq!(a.cycles, b.cycles, "{}", spec.name);
        assert_eq!(a.dram_words, b.dram_words, "{}", spec.name);
        assert_eq!(a.faults, b.faults, "{}", spec.name);

        // Faults only ever cost cycles.
        assert!(
            a.cycles >= clean.cycles,
            "{}: faulted {} < clean {}",
            spec.name,
            a.cycles,
            clean.cycles
        );

        // An inert fault config takes the fault-free path bit-for-bit.
        let inert = compiled
            .simulate_with_faults(&sim, &FaultConfig::none().with_seed(0xDEC0DE))
            .expect("simulates");
        assert_eq!(inert.cycles, clean.cycles, "{}", spec.name);
        assert_eq!(inert.dram_bytes, clean.dram_bytes, "{}", spec.name);
        assert_eq!(inert.faults, Default::default(), "{}", spec.name);
    }
}

#[test]
fn dse_sweep_with_doomed_substrate_records_failures_and_completes() {
    let (prog, _) = small_opts("gemm");
    let sizes = [("m", 32), ("n", 32), ("p", 32)];
    let base = CompileOptions::new(&sizes);
    // One healthy substrate and one whose cycle budget no design can
    // meet: every candidate on it must come back as a recorded failure,
    // not a lost sweep.
    let space = SearchSpace::new(&sizes)
        .tune_dim("m")
        .expect("tunable")
        .with_inner_pars(&[8, 16])
        .with_sim_variants(&[
            ("ok", SimConfig::default()),
            ("doomed", SimConfig::default().with_cycle_budget(1)),
        ]);

    let mut reference: Option<pphw_dse::DseReport> = None;
    for threads in [1usize, 4] {
        let cfg = DseConfig {
            threads,
            ..DseConfig::default()
        };
        let report = pphw::dse::explore_program(&prog, &base, &space, &cfg)
            .expect("sweep completes despite failing candidates");
        assert!(report.stats.failed > 0, "doomed substrate must fail");
        assert_eq!(report.failures.len(), report.stats.failed);
        for f in &report.failures {
            assert!(f.label.contains("sim=doomed"), "unexpected failure {f:?}");
            assert!(f.error.contains("budget"), "unexpected error {f:?}");
        }
        assert_eq!(report.best.sim_label, "ok");
        assert!(report.evaluated.iter().all(|p| p.sim_label == "ok"));
        if let Some(r) = &reference {
            assert_eq!(r.best.label, report.best.label, "threads={threads}");
            assert_eq!(r.failures, report.failures);
            assert_eq!(r.stats, report.stats);
        }
        reference = Some(report);
    }
}
