//! End-to-end serving: concurrent clients against one daemon must share
//! one design cache (a popular design compiles exactly once, no matter
//! how many clients race for it), responses must be bit-identical across
//! clients, and a request that blows its watchdog budget must degrade to
//! a typed error while concurrent well-behaved requests complete.

use std::sync::Arc;

use pphw_dse::cache::EvalCache;
use pphw_server::json::{parse_json, Json};
use pphw_server::{codes, Client, Limits, Server, Service};

fn spawn_daemon() -> (
    std::net::SocketAddr,
    Arc<Service>,
    std::thread::JoinHandle<pphw_server::ServiceStats>,
) {
    let service = Arc::new(Service::new(Limits::default(), 2, EvalCache::new()));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 4).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, service, handle)
}

fn shutdown(
    addr: &std::net::SocketAddr,
    handle: std::thread::JoinHandle<pphw_server::ServiceStats>,
) {
    let mut c = Client::connect(addr).expect("connect");
    c.call("{\"id\":\"bye\",\"method\":\"shutdown\"}")
        .expect("shutdown");
    handle.join().expect("join");
}

fn result_of(resp: &str) -> Json {
    let v = parse_json(resp).unwrap_or_else(|e| panic!("bad response {resp}: {e}"));
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {resp}"
    );
    v.get("result").expect("result").clone()
}

#[test]
fn concurrent_clients_share_exactly_one_compile() {
    let (addr, service, handle) = spawn_daemon();
    const CLIENTS: usize = 8;
    // Every client asks for the same design at the same time. The
    // exactly-once cache must fold all of them onto one compile.
    let line = "{\"id\":7,\"method\":\"compile\",\"bench\":\"gemm\",\
                \"sizes\":{\"m\":16,\"n\":16,\"p\":16},\"tiles\":{\"m\":8,\"n\":8},\
                \"inner_par\":4}";
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    let mut c = Client::connect(&addr).expect("connect");
                    c.call(line).expect("call")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    // Bit-identical artifacts: every client sees the same response text,
    // including the emitted-hardware hash.
    for resp in &responses[1..] {
        assert_eq!(resp, &responses[0], "clients saw different artifacts");
    }
    let hgl = result_of(&responses[0])
        .get("hgl_fnv1a64")
        .and_then(|h| h.as_str().map(str::to_string))
        .expect("hgl hash");
    assert_eq!(hgl.len(), 16, "hgl hash should be 16 hex chars: {hgl}");

    let stats = service.stats();
    assert_eq!(
        stats.design_builds, 1,
        "{CLIENTS} concurrent clients must trigger exactly one compile"
    );
    assert_eq!(
        stats.dedup_builds, 1,
        "one fingerprint must evaluate exactly once"
    );
    assert_eq!(
        stats.dedup_hits,
        (CLIENTS - 1) as u64,
        "the other {} requests must ride the first evaluation",
        CLIENTS - 1
    );
    shutdown(&addr, handle);
}

#[test]
fn over_budget_request_fails_typed_while_neighbors_complete() {
    let (addr, _service, handle) = spawn_daemon();
    let over = "{\"id\":1,\"method\":\"simulate\",\"bench\":\"sumrows\",\
                \"sizes\":{\"m\":16,\"n\":16},\"cycle_budget\":1}";
    let fine = "{\"id\":2,\"method\":\"simulate\",\"bench\":\"sumrows\",\
                \"sizes\":{\"m\":16,\"n\":16}}";
    let (bad, good) = std::thread::scope(|scope| {
        let bad = scope.spawn(|| {
            let mut c = Client::connect(&addr).expect("connect");
            c.call(over).expect("call")
        });
        let good = scope.spawn(|| {
            let mut c = Client::connect(&addr).expect("connect");
            c.call(fine).expect("call")
        });
        (bad.join().expect("bad"), good.join().expect("good"))
    });
    let bad = parse_json(&bad).expect("bad json");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some(codes::BUDGET),
        "budget overrun must surface as the typed budget error"
    );
    let cycles = result_of(&good)
        .get("cycles")
        .and_then(Json::as_u64)
        .expect("cycles");
    assert!(cycles > 0);
    shutdown(&addr, handle);
}

#[test]
fn repeated_configs_never_recompile_and_sources_share_by_content() {
    let (addr, service, handle) = spawn_daemon();
    let mut c = Client::connect(&addr).expect("connect");
    let sim = "{\"id\":1,\"method\":\"simulate\",\"bench\":\"outerprod\",\
               \"sizes\":{\"m\":8,\"n\":8},\"inner_par\":2}";
    let first = c.call(sim).expect("call");
    let builds_after_first = service.stats().design_builds;
    for _ in 0..5 {
        assert_eq!(
            c.call(sim).expect("call"),
            first,
            "warm responses must be bit-identical"
        );
    }
    assert_eq!(
        service.stats().design_builds,
        builds_after_first,
        "repeats of a served config must not recompile"
    );

    // Two *different* programs under the same client-chosen name must not
    // collide in the shared caches: the server keys sources by content.
    let src_a = "program t(n) {\n  input x: Float[n]\n  let y = map(n) { (i) =>\n    let v = (x(i) + 1.0)\n    yield v\n  }\n  return (y)\n}\n";
    let src_b = "program t(n) {\n  input x: Float[n]\n  let y = map(n) { (i) =>\n    let v = (x(i) + 2.0)\n    yield v\n  }\n  return (y)\n}\n";
    let call_src = |c: &mut Client, src: &str| {
        let line = format!(
            "{{\"id\":9,\"method\":\"compile\",\"source\":{},\"sizes\":{{\"n\":8}},\"inner_par\":2}}",
            pphw_server::json::escape(src)
        );
        let resp = c.call(&line).expect("call");
        result_of(&resp)
            .get("hgl_fnv1a64")
            .and_then(|h| h.as_str().map(str::to_string))
            .expect("hgl hash")
    };
    let hash_a = call_src(&mut c, src_a);
    let hash_b = call_src(&mut c, src_b);
    assert_ne!(
        hash_a, hash_b,
        "same-named source programs must be cached by content, not name"
    );
    shutdown(&addr, handle);
}
