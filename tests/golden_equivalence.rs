//! Golden-equivalence suite for the DSE fast-lane optimisation.
//!
//! The allocation-free simulator core, the shared-compile `DesignCache`,
//! and the persistent `EvalCache` are all required to preserve reports
//! *bit for bit*. This suite pins that guarantee: every fingerprint below
//! was captured from the pre-optimisation implementation (commit
//! `bee8d96`, `BTreeMap`-keyed stage stats, per-call `SimConfig` clones,
//! no compile sharing), and the optimised pipeline must reproduce each of
//! them exactly — fault-free and seeded-fault simulation at all three
//! optimisation levels, and full `explore` sweeps, on all six benchmarks.
//!
//! To regenerate after an *intentional* semantic change:
//! `PPHW_GOLDEN_PRINT=1 cargo test --test golden_equivalence -- --nocapture`
//! and paste the printed tables over the constants.

use pphw::dse::explore_with_cache;
use pphw::{compile, CompileOptions, OptLevel};
use pphw_apps::all_benchmarks;
use pphw_dse::{DseConfig, DseReport, EvalCache, SearchSpace};
use pphw_sim::{FaultConfig, SimConfig, SimReport};

/// Fault-free simulation fingerprints, one per (benchmark, opt level).
const GOLDEN_SIM: &[(&str, &str, u64)] = &[
    ("outerprod", "baseline", 0xdb5ce75d0359e094),
    ("outerprod", "tiled", 0x291ede8c55080629),
    ("outerprod", "meta", 0xc6d7fd45fdb20fe5),
    ("sumrows", "baseline", 0x33c060c1b302e9f3),
    ("sumrows", "tiled", 0x98a1c8585d8eba9a),
    ("sumrows", "meta", 0xdec596b40f15fe89),
    ("gemm", "baseline", 0xdd56542f65e809a3),
    ("gemm", "tiled", 0x11c5f532bd1e76c6),
    ("gemm", "meta", 0x7d067c9c2c0f0d27),
    ("tpchq6", "baseline", 0xa193db608c490046),
    ("tpchq6", "tiled", 0xaf49096f81695757),
    ("tpchq6", "meta", 0x5f4a6d6be9006149),
    ("gda", "baseline", 0xb1202700b8a0156a),
    ("gda", "tiled", 0xbaa11ec2247e54bf),
    ("gda", "meta", 0xcad442c4c7f5dbfb),
    ("kmeans", "baseline", 0x819fc93071119920),
    ("kmeans", "tiled", 0xef61e83410524161),
    ("kmeans", "meta", 0xa4761306cae801d8),
];

/// Seeded-fault simulation fingerprints (metapipelined level).
const GOLDEN_FAULT: &[(&str, u64)] = &[
    ("outerprod", 0x818eaeadfba4d057),
    ("sumrows", 0xa4544939d6921769),
    ("gemm", 0x311e6bd92a600a9c),
    ("tpchq6", 0x05097c4d7e0656ff),
    ("gda", 0x9dc759647a0d28b9),
    ("kmeans", 0xa9d976d74b87b54b),
];

/// `explore` fingerprints over a fixed two-substrate space.
const GOLDEN_DSE: &[(&str, u64)] = &[
    ("outerprod", 0x4d644f66c3c27159),
    ("sumrows", 0x24c1fa27ac47fa1d),
    ("gemm", 0x6f62d5ce49767ba1),
    ("tpchq6", 0x501fbdcb1bff4e42),
    ("gda", 0x0c9d889c77cb85e2),
    ("kmeans", 0x9eadad22b6b94264),
];

fn mix(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn mix_u64(h: &mut u64, v: u64) {
    mix(h, &v.to_le_bytes());
}

fn mix_str(h: &mut u64, s: &str) {
    mix(h, s.as_bytes());
    mix(h, &[0xff]);
}

/// Canonical fingerprint of a simulation report: every field, with floats
/// by bit pattern, so two reports hash equal iff they are bit-identical.
fn fingerprint_sim(r: &SimReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    mix_str(&mut h, &r.design);
    mix_str(&mut h, &r.style.to_string());
    mix_u64(&mut h, r.cycles);
    mix_u64(&mut h, r.seconds.to_bits());
    mix_u64(&mut h, r.dram_bytes);
    mix_u64(&mut h, r.dram_words);
    mix_u64(&mut h, r.faults.jitter_cycles);
    mix_u64(&mut h, r.faults.degraded_requests);
    mix_u64(&mut h, r.faults.retries);
    mix_u64(&mut h, r.faults.retry_cycles.to_bits());
    for s in &r.stages {
        mix_str(&mut h, &s.name);
        mix_u64(&mut h, s.invocations);
        mix_u64(&mut h, s.busy_cycles.to_bits());
        mix_u64(&mut h, s.dram_words);
    }
    h
}

/// Canonical fingerprint of a DSE report: the best point, the frontier,
/// the full ranking, failures, and every stats counter.
fn fingerprint_dse(r: &DseReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    mix_str(&mut h, &r.name);
    for p in std::iter::once(&r.best)
        .chain(r.frontier.iter())
        .chain(r.evaluated.iter())
    {
        mix_str(&mut h, &p.label);
        mix_u64(&mut h, p.cycles);
        mix_u64(&mut h, p.dram_words);
        mix_u64(&mut h, p.on_chip_bytes);
        mix_u64(&mut h, p.area.logic.to_bits());
        mix_u64(&mut h, p.area.ff.to_bits());
        mix_u64(&mut h, p.area.mem.to_bits());
        mix_u64(&mut h, p.area_score.to_bits());
    }
    for f in &r.failures {
        mix_str(&mut h, &f.label);
        mix_str(&mut h, &f.error);
    }
    let s = &r.stats;
    for v in [
        s.exhaustive,
        s.pruned_tile,
        s.pruned_budget,
        s.pruned_area,
        s.evaluated,
        s.infeasible,
        s.failed,
    ] {
        mix_u64(&mut h, v as u64);
    }
    mix_u64(&mut h, s.cache_hits);
    mix_u64(&mut h, s.cache_misses);
    h
}

fn print_mode() -> bool {
    std::env::var("PPHW_GOLDEN_PRINT").is_ok()
}

/// The seeded fault model used for the fault-run fingerprints: every
/// fault class active, fixed seed.
fn golden_faults() -> FaultConfig {
    FaultConfig::none()
        .with_seed(0xFEED)
        .with_latency_jitter(24)
        .with_degradation(2048, 256, 1.5)
        .with_burst_fail_rate(0.05)
}

fn level_tag(opt: OptLevel) -> &'static str {
    match opt {
        OptLevel::Baseline => "baseline",
        OptLevel::Tiled => "tiled",
        OptLevel::Metapipelined => "meta",
    }
}

fn base_options(spec: &pphw_apps::BenchSpec) -> CompileOptions {
    let mut opts = CompileOptions::new(&(spec.sizes)())
        .tiles(&(spec.tiles)())
        .inner_par(spec.inner_par);
    if let Some(m) = spec.meta_par {
        opts = opts.meta_inner_par(m);
    }
    opts
}

#[test]
fn simulate_matches_pre_optimisation_fingerprints() {
    let mut failures = Vec::new();
    for spec in all_benchmarks() {
        let prog = (spec.program)();
        for level in OptLevel::all() {
            let compiled =
                compile(&prog, &base_options(&spec).opt(level)).expect("benchmark compiles");
            let report = compiled
                .simulate(&SimConfig::default())
                .expect("benchmark simulates");
            let got = fingerprint_sim(&report);
            if print_mode() {
                println!(
                    "    (\"{}\", \"{}\", {:#018x}),",
                    spec.name,
                    level_tag(level),
                    got
                );
                continue;
            }
            let want = GOLDEN_SIM
                .iter()
                .find(|(n, l, _)| *n == spec.name && *l == level_tag(level))
                .map(|(_, _, f)| *f)
                .expect("fingerprint recorded");
            if got != want {
                failures.push(format!(
                    "{} [{}]: fingerprint {got:#018x} != golden {want:#018x}",
                    spec.name,
                    level_tag(level)
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "drifted reports:\n{}",
        failures.join("\n")
    );
}

#[test]
fn simulate_with_faults_matches_pre_optimisation_fingerprints() {
    let mut failures = Vec::new();
    for spec in all_benchmarks() {
        let prog = (spec.program)();
        let compiled = compile(&prog, &base_options(&spec)).expect("benchmark compiles");
        let report = compiled
            .simulate_with_faults(&SimConfig::default(), &golden_faults())
            .expect("benchmark simulates under faults");
        let got = fingerprint_sim(&report);
        if print_mode() {
            println!("    (\"{}\", {:#018x}),", spec.name, got);
            continue;
        }
        let want = GOLDEN_FAULT
            .iter()
            .find(|(n, _)| *n == spec.name)
            .map(|(_, f)| *f)
            .expect("fingerprint recorded");
        if got != want {
            failures.push(format!(
                "{} [faulted]: fingerprint {got:#018x} != golden {want:#018x}",
                spec.name
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "drifted reports:\n{}",
        failures.join("\n")
    );
}

/// The fixed sweep the `explore` fingerprints are taken over: the two
/// smallest tile candidates per tuned dimension, the benchmark's default
/// parallelism, and two DRAM substrates — small enough for a debug-mode
/// test, wide enough to exercise compile sharing across substrates.
fn golden_space(spec: &pphw_apps::BenchSpec) -> SearchSpace {
    let sizes = (spec.sizes)();
    let mut space = SearchSpace::new(&sizes);
    for (dim, _) in (spec.tiles)() {
        let n = sizes
            .iter()
            .find(|(k, _)| *k == dim)
            .map(|(_, v)| *v)
            .expect("tile dim has a size");
        let mut cands: Vec<i64> = Vec::new();
        let mut b = 4i64;
        while b <= n {
            if n % b == 0 {
                cands.push(b);
            }
            b *= 2;
        }
        cands.truncate(2); // smallest two: they always fit the budget
        cands.reverse();
        space = space.with_tile_candidates(dim, &cands);
    }
    space
        .with_inner_pars(&[spec.inner_par])
        .with_sim_variants(&[
            ("max4", SimConfig::default()),
            ("low-bw", SimConfig::default().with_dram_gbps(38.4)),
        ])
}

fn golden_dse_config(threads: usize) -> DseConfig {
    DseConfig {
        threads,
        on_chip_budget_bytes: 256 * 1024,
        ..DseConfig::default()
    }
}

#[test]
fn explore_matches_pre_optimisation_fingerprints_at_any_thread_count() {
    let mut failures = Vec::new();
    for spec in all_benchmarks() {
        let prog = (spec.program)();
        let mut base = CompileOptions::new(&(spec.sizes)()).inner_par(spec.inner_par);
        base.on_chip_budget_bytes = 256 * 1024;
        let space = golden_space(&spec);
        let mut first: Option<u64> = None;
        for threads in [1usize, 4] {
            let report = explore_with_cache(
                &prog,
                &base,
                &space,
                &golden_dse_config(threads),
                &EvalCache::new(),
            )
            .expect("search succeeds");
            let got = fingerprint_dse(&report);
            match first {
                None => first = Some(got),
                Some(f) => assert_eq!(
                    f, got,
                    "{}: explore not deterministic across thread counts",
                    spec.name
                ),
            }
        }
        let got = first.expect("at least one run");
        if print_mode() {
            println!("    (\"{}\", {:#018x}),", spec.name, got);
            continue;
        }
        let want = GOLDEN_DSE
            .iter()
            .find(|(n, _)| *n == spec.name)
            .map(|(_, f)| *f)
            .expect("fingerprint recorded");
        if got != want {
            failures.push(format!(
                "{} [dse]: fingerprint {got:#018x} != golden {want:#018x}",
                spec.name
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "drifted reports:\n{}",
        failures.join("\n")
    );
}
