//! Differential sweep over the six paper benchmarks (Table 5).
//!
//! For every benchmark, each seeded size/tile configuration is pushed
//! through the three executable semantics the repo has — the untiled
//! program under the reference interpreter (oracle, cross-checked against
//! the plain-Rust golden model), the tiled program under the same
//! interpreter, and the generated design at all three optimization levels
//! (functional results plus deterministic simulated timing). Any
//! divergence beyond float tolerance fails the sweep with the offending
//! case and stage.
//!
//! The final test injects a deliberately corrupted tiling transform and
//! asserts the harness catches it — the mutation smoke-check that keeps
//! the differential suite honest.

use pphw_apps::all_benchmarks;
use pphw_ir::expr::{BinOp, Expr};
use pphw_ir::Program;
use pphw_sim::SimConfig;
use pphw_testkit::differential::{run_differential, DiffCase, DiffError, DiffOptions};
use pphw_transform::rewrite::map_exprs;
use pphw_transform::{tile_program, TileConfig, TileError};

fn named_sim_variants() -> Vec<(String, SimConfig)> {
    SimConfig::named_variants()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Seeded size/tile sweeps per benchmark: at least three configurations
/// each, small enough that the interpreter-based oracle stays fast, large
/// enough to cover several tiles per dimension and uneven aspect ratios.
fn sweep(name: &str) -> Vec<DiffCase> {
    match name {
        "outerprod" => vec![
            DiffCase::new(&[("m", 32), ("n", 32)], &[("m", 8), ("n", 8)], 11),
            DiffCase::new(&[("m", 64), ("n", 48)], &[("m", 16), ("n", 16)], 12),
            DiffCase::new(&[("m", 48), ("n", 16)], &[("m", 8), ("n", 16)], 13),
        ],
        "sumrows" => vec![
            DiffCase::new(&[("m", 16), ("n", 64)], &[("m", 4), ("n", 64)], 21),
            DiffCase::new(&[("m", 32), ("n", 32)], &[("m", 8), ("n", 32)], 22),
            DiffCase::new(&[("m", 64), ("n", 16)], &[("m", 16), ("n", 16)], 23),
        ],
        "gemm" => vec![
            DiffCase::new(
                &[("m", 16), ("n", 16), ("p", 16)],
                &[("m", 4), ("n", 4), ("p", 4)],
                31,
            ),
            DiffCase::new(
                &[("m", 24), ("n", 16), ("p", 32)],
                &[("m", 8), ("n", 8), ("p", 8)],
                32,
            ),
            DiffCase::new(
                &[("m", 32), ("n", 24), ("p", 16)],
                &[("m", 16), ("n", 8), ("p", 8)],
                33,
            ),
        ],
        "tpchq6" => vec![
            DiffCase::new(&[("n", 256)], &[("n", 32)], 41),
            DiffCase::new(&[("n", 512)], &[("n", 64)], 42),
            DiffCase::new(&[("n", 1024)], &[("n", 128)], 43),
        ],
        "gda" => vec![
            DiffCase::new(&[("n", 64), ("d", 8)], &[("n", 16)], 51),
            DiffCase::new(&[("n", 96), ("d", 8)], &[("n", 32)], 52),
            DiffCase::new(&[("n", 128), ("d", 16)], &[("n", 32)], 53),
        ],
        "kmeans" => vec![
            DiffCase::new(&[("n", 64), ("k", 4), ("d", 4)], &[("n", 16), ("k", 2)], 61),
            DiffCase::new(
                &[("n", 128), ("k", 8), ("d", 8)],
                &[("n", 16), ("k", 4)],
                62,
            ),
            DiffCase::new(
                &[("n", 256), ("k", 8), ("d", 4)],
                &[("n", 32), ("k", 4)],
                63,
            ),
        ],
        other => panic!("unknown benchmark {other}"),
    }
}

fn run_sweep(name: &str) {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .expect("benchmark exists");
    let prog = (spec.program)();
    let cases = sweep(name);
    assert!(cases.len() >= 3, "sweep must cover >= 3 configurations");
    let report = run_differential(
        name,
        &prog,
        &spec.inputs,
        Some(&spec.golden),
        &cases,
        &DiffOptions::default(),
    )
    .unwrap_or_else(|e| panic!("differential sweep failed: {e}"));
    assert_eq!(report.cases.len(), cases.len());
    // Every case simulated all three optimization levels, non-trivially.
    for case in &report.cases {
        assert_eq!(case.levels.len(), 3, "{}: missing levels", case.label);
        assert!(case.levels.iter().all(|l| l.cycles > 0));
    }
    // The sweep compiles through `pphw::compile`, which installs the deep
    // per-pass verifier: when verification is enabled (debug builds, or
    // PPHW_VERIFY=1 as in CI), the sweep must have exercised it.
    if pphw_transform::verification_enabled() {
        assert!(
            pphw_transform::deep_verifier_runs() > 0,
            "post-transform verifier never ran during the differential sweep"
        );
    }
}

#[test]
fn outerprod_differential() {
    run_sweep("outerprod");
}

#[test]
fn sumrows_differential() {
    run_sweep("sumrows");
}

#[test]
fn gemm_differential() {
    run_sweep("gemm");
}

#[test]
fn tpchq6_differential() {
    run_sweep("tpchq6");
}

#[test]
fn gda_differential() {
    run_sweep("gda");
}

#[test]
fn kmeans_differential() {
    run_sweep("kmeans");
}

/// Joint parallelism × DRAM-substrate sweep on the two streaming
/// benchmarks: every (level, par, substrate) combination must simulate
/// deterministically, stay inside the analytic traffic band, and respect
/// the unconditional orderings (meta <= tiled cycles, tiled <= baseline
/// DRAM words) — but no tiling *speedup* is expected, since streaming
/// bodies have no reuse for tiles to capture.
#[test]
fn par_and_substrate_sweep_on_streaming_benchmarks() {
    let opts = DiffOptions {
        inner_pars: vec![8, 32],
        sim_variants: named_sim_variants(),
        ..DiffOptions::default()
    };
    for (name, case) in [
        (
            "outerprod",
            DiffCase::new(&[("m", 32), ("n", 32)], &[("m", 8), ("n", 8)], 81),
        ),
        ("tpchq6", DiffCase::new(&[("n", 512)], &[("n", 64)], 82)),
    ] {
        let spec = all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("benchmark exists");
        let report = run_differential(
            name,
            &(spec.program)(),
            &spec.inputs,
            Some(&spec.golden),
            &[case],
            &opts,
        )
        .unwrap_or_else(|e| panic!("sweep failed: {e}"));
        // 3 levels x 2 parallelism factors x 3 substrates.
        assert_eq!(report.cases[0].levels.len(), 18, "{name}");
    }
}

/// On reuse-heavy benchmarks at sizes where tile copies amortize, the
/// full `meta <= tiled <= baseline` cycle chain must hold across the
/// whole parallelism x substrate sweep (Figure 7's speedups).
#[test]
fn tiling_speedup_ordering_on_reuse_benchmarks() {
    let opts = DiffOptions {
        inner_pars: vec![8, 32],
        sim_variants: named_sim_variants(),
        expect_tiling_speedup: true,
        ..DiffOptions::default()
    };
    for (name, case) in [
        (
            "sumrows",
            DiffCase::new(&[("m", 128), ("n", 128)], &[("m", 16), ("n", 128)], 91),
        ),
        (
            "gemm",
            DiffCase::new(
                &[("m", 64), ("n", 64), ("p", 64)],
                &[("m", 16), ("n", 16), ("p", 16)],
                92,
            ),
        ),
        (
            "gda",
            DiffCase::new(&[("n", 256), ("d", 16)], &[("n", 64)], 93),
        ),
        (
            "kmeans",
            DiffCase::new(
                &[("n", 256), ("k", 8), ("d", 8)],
                &[("n", 32), ("k", 4)],
                94,
            ),
        ),
    ] {
        let spec = all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("benchmark exists");
        run_differential(
            name,
            &(spec.program)(),
            &spec.inputs,
            Some(&spec.golden),
            &[case],
            &opts,
        )
        .unwrap_or_else(|e| panic!("speedup ordering failed: {e}"));
    }
}

/// A transform that tiles correctly, then corrupts one reduction: the
/// first floating add in the tiled body becomes a subtract. A single
/// operator flip is the classic mutation-testing mutant — flipping *every*
/// add would be a weaker check, since an even number of sign flips along
/// one accumulation chain cancels out (as it does in tiled gemm).
fn broken_tile(prog: &Program, cfg: &TileConfig) -> Result<Program, TileError> {
    let mut t = tile_program(prog, cfg)?;
    let mut flipped = false;
    map_exprs(&mut t.body, &mut |e| {
        e.map(&mut |sub| match sub {
            Expr::Bin(BinOp::Add, a, b) if !flipped => {
                flipped = true;
                Expr::Bin(BinOp::Sub, a, b)
            }
            other => other,
        })
    });
    Ok(t)
}

/// Mutation smoke-check: the sweep must flag a deliberately broken
/// transform at the tiled-vs-untiled comparison, for every benchmark whose
/// body contains an additive reduction.
#[test]
fn broken_transform_is_caught_on_gemm() {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == "gemm")
        .expect("gemm");
    let prog = (spec.program)();
    let opts = DiffOptions {
        tile_fn: broken_tile,
        ..DiffOptions::default()
    };
    let err = run_differential(
        "gemm-mutated",
        &prog,
        &spec.inputs,
        Some(&spec.golden),
        &sweep("gemm"),
        &opts,
    )
    .expect_err("mutated tiling must be caught");
    match err {
        DiffError::Mismatch { ref stage, .. } => {
            assert_eq!(stage, "tiled vs untiled", "wrong stage: {err}")
        }
        ref other => panic!("expected a mismatch, got: {other}"),
    }
}

/// The same smoke-check on a reduction-of-reductions benchmark (sumrows),
/// guarding against the harness only being sensitive on gemm's shape.
#[test]
fn broken_transform_is_caught_on_sumrows() {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == "sumrows")
        .expect("sumrows");
    let prog = (spec.program)();
    let opts = DiffOptions {
        tile_fn: broken_tile,
        ..DiffOptions::default()
    };
    let err = run_differential(
        "sumrows-mutated",
        &prog,
        &spec.inputs,
        Some(&spec.golden),
        &sweep("sumrows"),
        &opts,
    )
    .expect_err("mutated tiling must be caught");
    assert!(
        matches!(err, DiffError::Mismatch { .. }),
        "expected a mismatch, got: {err}"
    );
}
