//! Golden diagnostics: every `tests/corpus/bad/*.ppl` must render its
//! expected `file:line:col` + code output exactly (the `.expected` file
//! next to it). Files that parse cleanly are pushed through the static
//! verifier at `inner_par = 4` with spans attached, so the corpus also
//! pins the span-threaded `PPHW0xx` rendering.
//!
//! Regenerate the expectations with `PPHW_UPDATE_GOLDEN=1 cargo test
//! --test frontend_diagnostics` after inspecting the new output.

use std::fs;
use std::path::{Path, PathBuf};

use pphw_frontend::parse_program;
use pphw_verify::{verify_program, VerifyConfig};

/// Renders all diagnostics for one corpus file: parse errors when it does
/// not parse, otherwise the span-attached verify report.
fn render(path: &Path) -> String {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    // Render under the repo-relative path so expectations are stable
    // across checkouts.
    let rel = format!(
        "tests/corpus/bad/{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("?")
    );
    match parse_program(&src, &rel) {
        Err(errs) => {
            assert!(!errs.is_empty(), "{rel}: error case with no errors");
            errs.iter()
                .map(|e| e.render(&src, &rel))
                .collect::<Vec<_>>()
                .join("\n")
        }
        Ok(out) => {
            let cfg = VerifyConfig {
                inner_par: 4,
                ..VerifyConfig::default()
            };
            let mut report = verify_program(&out.program, &cfg);
            report.attach_spans(&out.source_map, &src);
            assert!(
                report.error_count() > 0,
                "{rel}: parses and verifies clean — not a bad-corpus file"
            );
            report.to_text()
        }
    }
}

#[test]
fn bad_corpus_diagnostics_are_golden() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/bad");
    let update = std::env::var_os("PPHW_UPDATE_GOLDEN").is_some();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ppl"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 6,
        "bad corpus shrank to {} files",
        files.len()
    );
    let mut failures = Vec::new();
    for ppl in &files {
        let got = render(ppl);
        let expected_path = ppl.with_extension("expected");
        if update {
            fs::write(&expected_path, format!("{}\n", got.trim_end()))
                .unwrap_or_else(|e| panic!("write {expected_path:?}: {e}"));
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("missing golden {expected_path:?}: {e}"));
        if got.trim_end() != want.trim_end() {
            failures.push(format!(
                "== {}\n-- expected --\n{}\n-- got --\n{}",
                ppl.display(),
                want.trim_end(),
                got.trim_end()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden diagnostics diverged:\n{}",
        failures.join("\n\n")
    );
}

/// Every frontend diagnostic in the goldens carries a `file:line:col`
/// prefix and a stable code — the machine-checkable shape downstream
/// tooling keys on.
#[test]
fn golden_diagnostics_carry_spans_and_codes() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/bad");
    let mut seen_codes = std::collections::BTreeSet::new();
    for entry in fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}")) {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "expected") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        for line in text.lines() {
            if let Some(idx) = line.find("error") {
                let prefix = &line[..idx];
                assert!(
                    prefix.contains("tests/corpus/bad/") && prefix.matches(':').count() >= 3,
                    "{path:?}: diagnostic lacks file:line:col prefix: {line}"
                );
                if let Some(code) = line[idx..]
                    .split(['[', ']'])
                    .nth(1)
                    .filter(|c| c.starts_with("PP"))
                {
                    seen_codes.insert(code.to_string());
                }
            }
        }
    }
    // The corpus must cover both frontend (PPLP) and verifier (PPHW)
    // code spaces.
    assert!(
        seen_codes.iter().any(|c| c.starts_with("PPLP")),
        "no PPLP codes in goldens: {seen_codes:?}"
    );
    assert!(
        seen_codes.iter().any(|c| c.starts_with("PPHW")),
        "no PPHW codes in goldens: {seen_codes:?}"
    );
    assert!(
        seen_codes.len() >= 6,
        "golden corpus covers too few codes: {seen_codes:?}"
    );
}
