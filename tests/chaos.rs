//! Chaos end-to-end: the serving stack under a hostile network and a
//! hard crash, driven through the public surfaces only.
//!
//! Three guarantees are executed here:
//!
//! 1. **Exactly one typed outcome.** Every logical request sent through
//!    the seeded fault-injecting proxy (delays, trickle writes, torn and
//!    duplicated bytes, mid-stream disconnects) resolves to exactly one
//!    typed response via the retrying client — never a hang, never an
//!    untyped failure.
//! 2. **Crash-safe persistence.** A daemon serving over a journaled eval
//!    cache that dies without any clean shutdown loses nothing that was
//!    synced: a restarted daemon recovers every evaluation from the
//!    journal alone and replays the workload with zero misses and zero
//!    design builds.
//! 3. **Typed overload.** A daemon with a zero in-flight budget sheds
//!    every work request as retryable `EOVERLOAD`; the retrying client
//!    backs off, retries, and reports honest exhaustion — it never
//!    mistakes a shed for success.

use std::sync::Arc;

use pphw_dse::cache::EvalCache;
use pphw_dse::JournalConfig;
use pphw_server::json::{parse_json, Json};
use pphw_server::{codes, CallOutcome, Client, Limits, RetryClient, RetryConfig, Server, Service};
use pphw_testkit::chaos::{ChaosConfig, ChaosProxy};

fn spawn_daemon(
    limits: Limits,
    evals: EvalCache,
) -> (
    std::net::SocketAddr,
    Arc<Service>,
    std::thread::JoinHandle<pphw_server::ServiceStats>,
) {
    let service = Arc::new(Service::new(limits, 2, evals));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 4).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, service, handle)
}

fn shutdown(
    addr: &std::net::SocketAddr,
    handle: std::thread::JoinHandle<pphw_server::ServiceStats>,
) -> pphw_server::ServiceStats {
    let mut c = Client::connect(addr).expect("connect");
    c.call("{\"id\":\"bye\",\"method\":\"shutdown\"}")
        .expect("shutdown");
    handle.join().expect("join")
}

/// A deterministic mixed population: ping / simulate / verify, the same
/// methods the chaos load harness uses.
fn population_line(client: usize, i: usize) -> String {
    let id = client * 1000 + i;
    let benches = ["sumrows", "outerprod", "gemm"];
    let bench = benches[(client + i) % benches.len()];
    let scale = if i.is_multiple_of(2) { 8 } else { 16 };
    match i % 4 {
        0 => format!("{{\"id\":{id},\"method\":\"ping\"}}"),
        1 | 2 => format!(
            "{{\"id\":{id},\"method\":\"simulate\",\"bench\":\"{bench}\",\
             \"sizes\":{{\"m\":{scale},\"n\":{scale},\"p\":{scale}}},\
             \"tiles\":{{\"m\":4,\"n\":4}},\"inner_par\":4}}"
        ),
        _ => format!("{{\"id\":{id},\"method\":\"verify\",\"bench\":\"{bench}\"}}"),
    }
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pphw-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn every_request_through_chaos_reaches_exactly_one_typed_outcome() {
    let (addr, _service, handle) = spawn_daemon(Limits::default(), EvalCache::new());
    let proxy = ChaosProxy::spawn(
        addr,
        ChaosConfig {
            seed: 0xC4A0_5EED,
            ..ChaosConfig::default()
        },
    )
    .expect("proxy");
    let paddr = proxy.addr();

    const CLIENTS: usize = 2;
    const REQUESTS: usize = 16;
    let outcomes: Vec<(usize, usize, CallOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut rc = RetryClient::new(
                        paddr,
                        RetryConfig {
                            jitter_seed: c as u64,
                            read_timeout: std::time::Duration::from_secs(2),
                            ..RetryConfig::default()
                        },
                    );
                    (0..REQUESTS)
                        .map(|i| (c, i, rc.call(&population_line(c, i))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    });

    assert_eq!(outcomes.len(), CLIENTS * REQUESTS);
    for (c, i, outcome) in &outcomes {
        match outcome {
            CallOutcome::Typed(resp) => {
                let v = parse_json(resp)
                    .unwrap_or_else(|e| panic!("client {c} request {i}: bad final JSON: {e}"));
                let ok = v.get("ok").and_then(Json::as_bool) == Some(true);
                let coded = v
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .is_some();
                assert!(
                    ok || coded,
                    "client {c} request {i}: final outcome neither ok nor coded: {resp}"
                );
            }
            CallOutcome::Exhausted { attempts, last } => {
                panic!("client {c} request {i} exhausted after {attempts} attempts: {last}")
            }
        }
    }

    let faults = proxy.stop();
    assert!(faults.chunks > 0, "nothing flowed through the proxy");
    assert!(
        faults.disconnects
            + faults.corruptions
            + faults.duplicates
            + faults.trickles
            + faults.delays
            > 0,
        "the chaos schedule never fired — the run proved nothing: {faults:?}"
    );
    shutdown(&addr, handle);
}

#[test]
fn daemon_killed_without_shutdown_recovers_from_the_journal_alone() {
    let dir = fresh_dir("kill-recovery");
    let snapshot = dir.join("evals.pphwc");

    // First life: journaled cache, every append synced, serve a workload,
    // then tear the server down WITHOUT checkpointing or saving — the
    // journal file is all that survives, exactly as after `kill -9`.
    let cache = EvalCache::open_journaled_with(
        &snapshot,
        JournalConfig {
            sync_every: 1,
            ..JournalConfig::default()
        },
    )
    .expect("journaled open");
    let (addr, service, handle) = spawn_daemon(Limits::default(), cache);
    let mut c = Client::connect(&addr).expect("connect");
    for client in 0..2 {
        for i in 0..12 {
            let resp = c.call(&population_line(client, i)).expect("call");
            let v = parse_json(&resp).expect("json");
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        }
    }
    let first_life_misses = service.stats().eval_misses;
    assert!(first_life_misses > 0, "workload never evaluated anything");
    drop(c);
    shutdown(&addr, handle);
    assert!(
        !snapshot.exists(),
        "no snapshot may exist — recovery must come from the journal"
    );

    // Second life: a fresh daemon over the same path recovers everything
    // and replays the identical workload without a single re-evaluation;
    // only verify's design-level analysis may compile a design.
    let recovered = EvalCache::open_journaled(&snapshot).expect("reopen");
    let stats = recovered.journal_stats().expect("journal stats");
    assert_eq!(stats.recovered_snapshot, 0);
    assert_eq!(stats.recovered_journal, first_life_misses);
    let (addr, service, handle) = spawn_daemon(Limits::default(), recovered);
    let mut c = Client::connect(&addr).expect("connect");
    for client in 0..2 {
        for i in 0..12 {
            let resp = c.call(&population_line(client, i)).expect("call");
            let v = parse_json(&resp).expect("json");
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        }
    }
    let s = service.stats();
    assert_eq!(
        s.eval_misses, 0,
        "recovery gate: the journal should have made every evaluation a hit"
    );
    // Verify requests carry design-level flow analysis, so each distinct
    // verified design compiles once per daemon life (the design cache is
    // in-memory and not journaled); simulate requests must still never
    // reach the design cache — their eval hits short-circuit first.
    let verified: std::collections::BTreeSet<usize> = (0..2)
        .flat_map(|c| (0..12).filter(|i| i % 4 == 3).map(move |i| (c + i) % 3))
        .collect();
    assert_eq!(
        s.design_builds as usize,
        verified.len(),
        "recovery gate: only the verify requests' designs may compile; \
         simulate eval-cache hits must short-circuit before the design cache"
    );
    assert_eq!(s.eval_hits, first_life_misses);
    drop(c);
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_budget_daemon_sheds_typed_and_retry_client_reports_honest_exhaustion() {
    let (addr, service, handle) = spawn_daemon(
        Limits {
            max_inflight: 0,
            ..Limits::default()
        },
        EvalCache::new(),
    );
    let mut rc = RetryClient::new(
        addr,
        RetryConfig {
            max_attempts: 4,
            base_delay: std::time::Duration::from_millis(1),
            max_delay: std::time::Duration::from_millis(4),
            ..RetryConfig::default()
        },
    );

    // Control traffic is never shed: ping succeeds even at zero budget.
    let ping = rc.call("{\"id\":1,\"method\":\"ping\"}");
    match &ping {
        CallOutcome::Typed(resp) => {
            let v = parse_json(resp).expect("json");
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        }
        CallOutcome::Exhausted { .. } => panic!("ping must not be shed: {ping:?}"),
    }

    // Work is shed every time; the client retries with backoff and then
    // reports exhaustion naming the shed, not a fake success.
    let work = rc.call(
        "{\"id\":2,\"method\":\"simulate\",\"bench\":\"sumrows\",\
         \"sizes\":{\"m\":8,\"n\":8},\"inner_par\":2}",
    );
    match work {
        CallOutcome::Exhausted { attempts, last } => {
            assert_eq!(attempts, 4);
            assert!(
                last.contains(codes::OVERLOAD),
                "exhaustion should name the typed shed: {last}"
            );
        }
        CallOutcome::Typed(resp) => panic!("a zero-budget daemon returned work: {resp}"),
    }
    assert_eq!(rc.stats().retried_overload, 4);
    assert!(service.stats().shed_requests >= 4);
    shutdown(&addr, handle);
}
