//! Acceptance tests for the `pphw-verify` static-analysis layer.
//!
//! Two halves keep each other honest:
//!
//! - **Pristine programs verify clean.** Every Table 5 benchmark passes
//!   all three analyzer families — the IR verifier, the parallelization
//!   race detector at its real lane count, and the metapipeline hazard
//!   checker — at the source level and after compilation at every
//!   optimization level. The per-pass deep verifier is also shown to be
//!   live inside the tiling pipeline, so a transform bug is caught at the
//!   pass that introduced it.
//! - **Seeded-illegal inputs are rejected with their stable code.** One
//!   mutant per analyzer family (plus extras) asserts the exact `PPHW0xx`
//!   diagnostic, the mutation-testing discipline that proves the
//!   analyzers actually fire.

use pphw::{compile, CompileOptions, OptLevel, VerifyConfig};
use pphw_apps::all_benchmarks;
use pphw_hw::design::{
    BufId, Buffer, BufferKind, Ctrl, CtrlKind, Design, DesignStyle, Node, Unit, UnitKind,
};
use pphw_ir::builder::ProgramBuilder;
use pphw_ir::pattern::Init;
use pphw_ir::types::{DType, ScalarType, Sym};
use pphw_ir::Program;
use pphw_verify::{verify_design, verify_program, DiagCode};

/// Mirrors `pphw_bench::options_for`: the paper's per-benchmark
/// configuration (Table 5 sizes/tiles, §6.1 parallelism).
fn options(spec: &pphw_apps::BenchSpec) -> CompileOptions {
    let mut opts = CompileOptions::new(&(spec.sizes)())
        .tiles(&(spec.tiles)())
        .inner_par(spec.inner_par);
    if let Some(mp) = spec.meta_par {
        opts = opts.meta_inner_par(mp);
    }
    opts
}

/// All six pristine benchmarks verify clean at every stage: the source
/// program under the IR verifier + race detector at the benchmark's real
/// parallelism, and the compiled artifact (program + generated design) at
/// all three optimization levels.
#[test]
fn six_benchmarks_verify_clean_at_every_stage() {
    for spec in all_benchmarks() {
        let prog = (spec.program)();
        let cfg = VerifyConfig::with_inner_par(spec.inner_par.max(spec.meta_par.unwrap_or(0)));
        let report = verify_program(&prog, &cfg);
        assert!(
            report.is_clean(),
            "{} source:\n{}",
            spec.name,
            report.to_text()
        );
        for opt in OptLevel::all() {
            let compiled = compile(&prog, &options(&spec).opt(opt))
                .unwrap_or_else(|e| panic!("{} [{opt}] failed to compile: {e}", spec.name));
            let report = compiled.verify();
            assert!(
                report.is_clean(),
                "{} [{opt}]:\n{}",
                spec.name,
                report.to_text()
            );
        }
    }
}

/// The deep per-pass verifier is installed by `pphw::compile` and runs
/// after every pass of the tiling pipeline (debug builds and whenever
/// `PPHW_VERIFY` is set).
#[test]
fn deep_verifier_runs_after_every_tiling_pass() {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == "gemm")
        .expect("gemm exists");
    let before = pphw_transform::deep_verifier_runs();
    compile(&(spec.program)(), &options(&spec).opt(OptLevel::Tiled)).expect("gemm compiles");
    let after = pphw_transform::deep_verifier_runs();
    if pphw_transform::verification_enabled() {
        assert!(
            after > before,
            "deep verifier never ran during a tiled compile"
        );
    } else {
        assert_eq!(after, before, "verifier must stay off when disabled");
    }
    // Tier-1 runs tests in debug, where the verifier is unconditionally on.
    #[cfg(debug_assertions)]
    assert!(pphw_transform::verification_enabled());
}

/// A fold whose combine is subtraction — not associative-commutative.
fn subfold() -> Program {
    let mut b = ProgramBuilder::new("subfold");
    let m = b.size("m");
    let x = b.input("x", DType::F32, vec![m.clone()]);
    let out = b.fold(
        "acc",
        vec![m],
        vec![],
        ScalarType::Prim(DType::F32),
        Init::zeros(),
        |c, i, acc| {
            let v = c.read(x, vec![c.var(i[0])]);
            c.add(c.var(acc), v)
        },
        |c, a, b2| c.sub(c.var(a), c.var(b2)),
    );
    b.finish(vec![out])
}

/// Race-detector family: a parallelized non-associative combine is
/// `PPHW010`; the same program is legal serially; the allowlist escape
/// hatch suppresses the finding at the diagnosed path.
#[test]
fn non_associative_parallel_combine_is_pphw010_with_allowlist_escape() {
    let prog = subfold();

    let parallel = verify_program(&prog, &VerifyConfig::with_inner_par(8));
    assert!(
        parallel.has(DiagCode::NonAssocCombine),
        "{}",
        parallel.to_text()
    );
    let path = parallel
        .errors()
        .find(|d| d.code == DiagCode::NonAssocCombine)
        .map(|d| d.path.clone())
        .expect("diagnostic carries a pattern path");
    assert!(
        path.starts_with("subfold"),
        "path is human-readable: {path}"
    );

    let serial = verify_program(&prog, &VerifyConfig::with_inner_par(1));
    assert!(serial.is_clean(), "{}", serial.to_text());

    let allowed = verify_program(&prog, &VerifyConfig::with_inner_par(8).allow_combine(path));
    assert!(allowed.is_clean(), "{}", allowed.to_text());
}

fn unit(name: &str, reads: Vec<BufId>, writes: Vec<BufId>) -> Node {
    Node::Unit(Unit {
        name: name.into(),
        kind: UnitKind::Vector { lanes: 1 },
        elems: 64,
        ops_per_elem: 1,
        depth: 4,
        streams: vec![],
        reads,
        writes,
    })
}

fn two_stage_metapipeline(kind: BufferKind) -> Design {
    Design {
        name: "seeded".into(),
        style: DesignStyle::Metapipelined,
        root: Node::Ctrl(Ctrl {
            name: "top".into(),
            kind: CtrlKind::Metapipeline,
            iters: 4,
            stages: vec![
                unit("load", vec![], vec![BufId(0)]),
                unit("compute", vec![BufId(0)], vec![]),
            ],
        }),
        buffers: vec![Buffer {
            id: BufId(0),
            name: "tile".into(),
            words: 64,
            word_bytes: 4,
            kind,
            banks: 1,
            readers: 1,
            writers: 1,
        }],
    }
}

/// Hazard-checker family: a shared single-buffered memory between
/// overlapped metapipeline stages is `PPHW020`; double-buffering (the
/// promotion hardware generation applies) is the fix.
#[test]
fn shared_buffer_metapipeline_raw_is_pphw020() {
    let cfg = VerifyConfig::default();
    let racy = verify_design(&two_stage_metapipeline(BufferKind::Buffer), &cfg);
    assert!(racy.has(DiagCode::MetapipelineRaw), "{}", racy.to_text());

    let fixed = verify_design(&two_stage_metapipeline(BufferKind::DoubleBuffer), &cfg);
    assert!(fixed.is_clean(), "{}", fixed.to_text());
}

/// IR-verifier family: a read of a rank-2 tensor through a single index
/// is `PPHW007`, located at a human-readable pattern path.
#[test]
fn rank_mismatch_is_pphw007() {
    let mut b = ProgramBuilder::new("badrank");
    let m = b.size("m");
    let n = b.size("n");
    let x = b.input("x", DType::F32, vec![m.clone(), n]);
    let out = b.map(vec![m], |c, idx| c.read(x, vec![c.var(idx[0])]));
    let prog = b.finish(vec![out]);
    let report = verify_program(&prog, &VerifyConfig::default());
    assert!(report.has(DiagCode::RankMismatch), "{}", report.to_text());
    assert!(
        report.errors().all(|d| d.path.starts_with("badrank")),
        "{}",
        report.to_text()
    );
}

/// IR-verifier family: a dangling result symbol is `PPHW001`.
#[test]
fn unbound_result_is_pphw001() {
    let mut prog = subfold();
    prog.body.result = vec![Sym(9999)];
    let report = verify_program(&prog, &VerifyConfig::default());
    assert!(report.has(DiagCode::UnboundSym), "{}", report.to_text());
}

/// The JSON report is machine-readable: codes, severities, and paths all
/// appear, and a clean report is an empty diagnostics array.
#[test]
fn json_report_is_machine_readable() {
    let report = verify_program(&subfold(), &VerifyConfig::with_inner_par(8));
    let json = report.to_json();
    assert!(json.contains("\"PPHW010\""), "{json}");
    assert!(json.contains("\"error\""), "{json}");
    assert!(json.contains("subfold"), "{json}");

    let clean = verify_program(&subfold(), &VerifyConfig::default());
    assert!(clean.is_clean());
    assert!(clean.to_json().contains("\"diagnostics\":[]"));
}

/// Flow-analyzer family (`PPHW040`–`PPHW044`): seeded channel mutants of
/// the clean two-stage metapipeline, one per code.
#[test]
fn flow_family_mutants_raise_their_stable_codes() {
    let cfg = VerifyConfig::default();

    // PPHW042: one word below the double-buffered capacity leaves a
    // single slot — producer and consumer serialize.
    let mut stall = two_stage_metapipeline(BufferKind::DoubleBuffer);
    stall.buffers[0].words = 63;
    let report = verify_design(&stall, &cfg);
    assert!(report.has(DiagCode::ChannelStall), "{}", report.to_text());

    // PPHW041: capacity below one token is a guaranteed deadlock.
    let mut dead = two_stage_metapipeline(BufferKind::DoubleBuffer);
    dead.buffers[0].words = 31;
    let report = verify_design(&dead, &cfg);
    assert!(
        report.has(DiagCode::ChannelDeadlock),
        "{}",
        report.to_text()
    );

    // PPHW040: FIFO reads are destructive, so endpoints moving different
    // volumes per iteration are rate-inconsistent.
    let mut skewed = two_stage_metapipeline(BufferKind::Fifo);
    if let Node::Ctrl(c) = &mut skewed.root {
        if let Node::Unit(u) = &mut c.stages[1] {
            u.elems = 32;
        }
    }
    let report = verify_design(&skewed, &cfg);
    assert!(report.has(DiagCode::RateMismatch), "{}", report.to_text());

    // PPHW043: a channel read but written by no one starves its consumer.
    let mut starved = two_stage_metapipeline(BufferKind::DoubleBuffer);
    if let Node::Ctrl(c) = &mut starved.root {
        c.stages[0] = unit("load", vec![], vec![]);
    }
    let report = verify_design(&starved, &cfg);
    assert!(report.has(DiagCode::StarvedChannel), "{}", report.to_text());

    // PPHW044 (warning): capacity beyond the minimal overlap depth is
    // reclaimable area, but not an error — the report stays clean.
    let mut fat = two_stage_metapipeline(BufferKind::DoubleBuffer);
    fat.buffers[0].words = 128;
    let report = verify_design(&fat, &cfg);
    assert!(
        report.has(DiagCode::OverProvisionedChannel),
        "{}",
        report.to_text()
    );
    assert!(report.is_clean(), "{}", report.to_text());
    assert_eq!(report.warning_count(), 1, "{}", report.to_text());
}

/// `pphw_verify::flow::infer_capacities` repairs an over-provisioned
/// channel down to the minimal safe depth and reports the change; the
/// repaired design is flow-clean.
#[test]
fn infer_capacities_repairs_over_provisioned_channels() {
    let mut fat = two_stage_metapipeline(BufferKind::DoubleBuffer);
    fat.buffers[0].words = 256;
    let changes = pphw_verify::flow::infer_capacities(&mut fat);
    assert_eq!(changes.len(), 1);
    assert_eq!(changes[0].old_words, 256);
    assert_eq!(changes[0].new_words, 64);
    assert_eq!(fat.buffers[0].words, 64);
    let report = verify_design(&fat, &VerifyConfig::default());
    assert!(
        report.is_clean() && report.warning_count() == 0,
        "{}",
        report.to_text()
    );
}
