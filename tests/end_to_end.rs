//! End-to-end validation: every benchmark of Table 5, compiled at every
//! optimization level, computes the same values as its plain-Rust golden
//! implementation. This is the cross-crate contract — tiling, interchange,
//! copy insertion, and the design's functional semantics (the transformed
//! IR) must all preserve the program's meaning.

use pphw::{compile, CompileOptions, OptLevel};
use pphw_apps::{all_benchmarks, BenchSpec};

/// Small sizes so the interpreter-based functional check stays fast while
/// still exercising several tiles per dimension.
#[allow(clippy::type_complexity)]
fn small_sizes(spec: &BenchSpec) -> (Vec<(&'static str, i64)>, Vec<(&'static str, i64)>) {
    match spec.name {
        "outerprod" => (vec![("m", 64), ("n", 48)], vec![("m", 16), ("n", 16)]),
        "sumrows" => (vec![("m", 32), ("n", 64)], vec![("m", 8), ("n", 64)]),
        "gemm" => (
            vec![("m", 24), ("n", 16), ("p", 32)],
            vec![("m", 8), ("n", 8), ("p", 8)],
        ),
        "tpchq6" => (vec![("n", 1024)], vec![("n", 128)]),
        "gda" => (vec![("n", 96), ("d", 8)], vec![("n", 16)]),
        "kmeans" => (
            vec![("n", 128), ("k", 8), ("d", 8)],
            vec![("n", 16), ("k", 4)],
        ),
        other => panic!("unknown benchmark {other}"),
    }
}

fn check_benchmark(spec: &BenchSpec, level: OptLevel) {
    let (sizes, tiles) = small_sizes(spec);
    let env = pphw_ir::Size::env(&sizes);
    let prog = (spec.program)();
    let opts = CompileOptions::new(&sizes).tiles(&tiles).opt(level);
    let compiled = compile(&prog, &opts)
        .unwrap_or_else(|e| panic!("{} failed to compile at {level}: {e}", spec.name));

    let inputs = (spec.inputs)(&env, 42);
    let got = compiled
        .execute(inputs.clone())
        .unwrap_or_else(|e| panic!("{} failed to execute at {level}: {e}", spec.name));
    let want = (spec.golden)(&inputs, &env);
    assert_eq!(got.len(), want.len(), "{} output arity", spec.name);
    for (g, w) in got.iter().zip(&want) {
        assert!(
            g.approx_eq(w, 1e-3),
            "{} at {level}: compiled output diverges from golden\n\
             transformed IR:\n{}",
            spec.name,
            pphw_ir::pretty::print_program(&compiled.program)
        );
    }
    // The design must be non-trivial.
    let mut units = 0;
    compiled.design.root.visit_units(&mut |_| units += 1);
    assert!(units > 0, "{} produced an empty design", spec.name);
}

macro_rules! level_tests {
    ($($name:ident: $bench:expr, $level:expr;)*) => {
        $(
            #[test]
            fn $name() {
                let spec = all_benchmarks()
                    .into_iter()
                    .find(|s| s.name == $bench)
                    .expect("benchmark exists");
                check_benchmark(&spec, $level);
            }
        )*
    };
}

level_tests! {
    outerprod_baseline_matches_golden: "outerprod", OptLevel::Baseline;
    outerprod_tiled_matches_golden: "outerprod", OptLevel::Tiled;
    outerprod_meta_matches_golden: "outerprod", OptLevel::Metapipelined;
    sumrows_baseline_matches_golden: "sumrows", OptLevel::Baseline;
    sumrows_tiled_matches_golden: "sumrows", OptLevel::Tiled;
    sumrows_meta_matches_golden: "sumrows", OptLevel::Metapipelined;
    gemm_baseline_matches_golden: "gemm", OptLevel::Baseline;
    gemm_tiled_matches_golden: "gemm", OptLevel::Tiled;
    gemm_meta_matches_golden: "gemm", OptLevel::Metapipelined;
    tpchq6_baseline_matches_golden: "tpchq6", OptLevel::Baseline;
    tpchq6_tiled_matches_golden: "tpchq6", OptLevel::Tiled;
    tpchq6_meta_matches_golden: "tpchq6", OptLevel::Metapipelined;
    gda_baseline_matches_golden: "gda", OptLevel::Baseline;
    gda_tiled_matches_golden: "gda", OptLevel::Tiled;
    gda_meta_matches_golden: "gda", OptLevel::Metapipelined;
    kmeans_baseline_matches_golden: "kmeans", OptLevel::Baseline;
    kmeans_tiled_matches_golden: "kmeans", OptLevel::Tiled;
    kmeans_meta_matches_golden: "kmeans", OptLevel::Metapipelined;
}

/// Multiple seeds: the functional contract holds across workloads.
#[test]
fn kmeans_multiple_seeds() {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == "kmeans")
        .expect("kmeans");
    let (sizes, tiles) = small_sizes(&spec);
    let env = pphw_ir::Size::env(&sizes);
    let prog = (spec.program)();
    let opts = CompileOptions::new(&sizes)
        .tiles(&tiles)
        .opt(OptLevel::Metapipelined);
    let compiled = compile(&prog, &opts).unwrap();
    for seed in [1u64, 7, 99, 1234] {
        let inputs = (spec.inputs)(&env, seed);
        let got = compiled.execute(inputs.clone()).unwrap();
        let want = (spec.golden)(&inputs, &env);
        assert!(
            got[0].approx_eq(&want[0], 1e-3),
            "kmeans seed {seed} diverged"
        );
    }
}

/// Every benchmark's HGL emission mentions its main templates.
#[test]
fn hgl_emission_for_all_benchmarks() {
    for spec in all_benchmarks() {
        let (sizes, tiles) = small_sizes(&spec);
        let prog = (spec.program)();
        let opts = CompileOptions::new(&sizes)
            .tiles(&tiles)
            .opt(OptLevel::Metapipelined);
        let compiled = compile(&prog, &opts).unwrap();
        let hgl = compiled.emit_hgl();
        assert!(
            hgl.contains("extends Kernel"),
            "{}: no kernel class\n{hgl}",
            spec.name
        );
        assert!(
            hgl.contains("io.tileLoad") || hgl.contains("compute."),
            "{}: no template instantiations\n{hgl}",
            spec.name
        );
    }
}

/// Tiling + metapipelining never loses to the baseline on simulated cycles
/// for the locality-bound benchmarks.
#[test]
fn locality_benchmarks_speed_up() {
    for name in ["sumrows", "gemm", "gda", "kmeans"] {
        let spec = all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("benchmark");
        let prog = (spec.program)();
        let opts = pphw_bench_options(&spec);
        let eval = pphw::evaluate(&prog, &opts, &pphw_sim::SimConfig::default()).unwrap();
        let meta = eval.row(OptLevel::Metapipelined).speedup;
        assert!(
            meta > 2.0,
            "{name}: expected >2x metapipelined speedup, got {meta:.2}"
        );
    }
}

fn pphw_bench_options(spec: &BenchSpec) -> CompileOptions {
    let mut opts = CompileOptions::new(&(spec.sizes)())
        .tiles(&(spec.tiles)())
        .inner_par(spec.inner_par);
    if let Some(mp) = spec.meta_par {
        opts = opts.meta_inner_par(mp);
    }
    opts
}
