//! Acceptance tests for the design-space-exploration subsystem on the
//! real compile+simulate pipeline (the synthetic-evaluator unit tests
//! live in `pphw-dse` itself).
//!
//! The two hard guarantees checked here:
//!
//! 1. **Determinism** — the best point, the Pareto frontier, the full
//!    ranking, and every counter are bit-identical whether the search
//!    runs on 1, 2, or 8 worker threads.
//! 2. **The prefilter pays** — with a constraining budget, the analytic
//!    prefilter measurably reduces the number of compile+simulate
//!    evaluations versus exhaustive enumeration, without changing the
//!    best point it finds.

use std::sync::Arc;

use pphw::dse::{explore_program, explore_with_cache, explore_with_caches};
use pphw::CompileOptions;
use pphw_apps::all_benchmarks;
use pphw_dse::cache::{DesignCache, EvalCache};
use pphw_dse::{DseConfig, DseError, SearchSpace};
use pphw_ir::Program;
use pphw_sim::SimConfig;

fn benchmark(name: &str) -> Program {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .expect("benchmark exists");
    (spec.program)()
}

const GEMM_SIZES: &[(&str, i64)] = &[("m", 32), ("n", 32), ("p", 32)];

fn gemm_space() -> SearchSpace {
    SearchSpace::new(GEMM_SIZES)
        .tune_dim("m")
        .unwrap()
        .tune_dim("n")
        .unwrap()
        .tune_dim("p")
        .unwrap()
        .with_inner_pars(&[8, 16])
}

#[test]
fn dse_is_deterministic_across_thread_counts_on_real_pipeline() {
    let prog = benchmark("gemm");
    let base = CompileOptions::new(GEMM_SIZES);
    let space = gemm_space();
    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let cfg = DseConfig {
            threads,
            ..DseConfig::default()
        };
        let report = explore_program(&prog, &base, &space, &cfg).expect("search succeeds");
        assert!(report.best.cycles > 0);
        if let Some(r) = &reference {
            let r: &pphw_dse::DseReport = r;
            assert_eq!(r.best.label, report.best.label, "threads={threads}");
            assert_eq!(r.best.cycles, report.best.cycles);
            assert_eq!(
                r.best.area_score.to_bits(),
                report.best.area_score.to_bits(),
                "bit-identical area objective"
            );
            let labels = |rep: &pphw_dse::DseReport| {
                rep.evaluated
                    .iter()
                    .map(|p| (p.label.clone(), p.cycles))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                labels(r),
                labels(&report),
                "full ranking at {threads} threads"
            );
            let frontier = |rep: &pphw_dse::DseReport| {
                rep.frontier
                    .iter()
                    .map(|p| (p.label.clone(), p.cycles, p.area_score.to_bits()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(frontier(r), frontier(&report));
            assert_eq!(r.stats, report.stats);
        }
        reference = Some(report);
    }
}

#[test]
fn prefilter_reduces_evaluations_without_changing_the_best() {
    let prog = benchmark("gemm");
    // A 2 KiB budget: big tiles need a multi-KiB interchanged accumulator
    // plus tile copies, so the analytic prefilter rejects them before the
    // compiler runs; small tiles fit.
    let budget = 2 * 1024;
    let base = CompileOptions::new(GEMM_SIZES);
    let mut base_budget = base.clone();
    base_budget.on_chip_budget_bytes = budget;
    let space = gemm_space();

    let pruned_cfg = DseConfig {
        threads: 2,
        on_chip_budget_bytes: budget,
        ..DseConfig::default()
    };
    let pruned = explore_program(&prog, &base_budget, &space, &pruned_cfg).expect("search");
    assert!(
        pruned.stats.pruned_budget > 0,
        "budget prune must fire: {:?}",
        pruned.stats
    );
    assert!(
        pruned.stats.evaluated < pruned.stats.exhaustive,
        "prefilter must reduce evaluations: {:?}",
        pruned.stats
    );
    // Every pruned point was only *analytically* rejected; the survivors
    // still cover the space, so cache misses equal survivors.
    assert_eq!(
        pruned.stats.cache_misses as usize, pruned.stats.evaluated,
        "fresh cache: every survivor compiled once"
    );

    // Exhaustive run (prefilter off) must agree on the best point: the
    // prefilter only rejects candidates the authoritative post-compile
    // budget check would reject anyway.
    let exhaustive_cfg = DseConfig {
        threads: 2,
        on_chip_budget_bytes: budget,
        prefilter: false,
        ..DseConfig::default()
    };
    let exhaustive = explore_program(&prog, &base_budget, &space, &exhaustive_cfg).expect("search");
    assert_eq!(exhaustive.stats.pruned_total(), 0);
    assert_eq!(exhaustive.stats.evaluated, exhaustive.stats.exhaustive);
    assert!(
        exhaustive.stats.evaluated > pruned.stats.evaluated,
        "prefilter saved {} of {} compiles",
        exhaustive.stats.evaluated - pruned.stats.evaluated,
        exhaustive.stats.evaluated
    );
    assert_eq!(exhaustive.best.label, pruned.best.label);
    assert_eq!(exhaustive.best.cycles, pruned.best.cycles);
}

#[test]
fn shared_cache_short_circuits_repeat_searches() {
    let prog = benchmark("sumrows");
    let sizes: &[(&str, i64)] = &[("m", 64), ("n", 64)];
    let base = CompileOptions::new(sizes);
    let space = SearchSpace::new(sizes)
        .tune_dim("m")
        .unwrap()
        .with_inner_pars(&[8, 16]);
    let cache = EvalCache::new();
    let cfg = DseConfig::default();

    let first = explore_with_cache(&prog, &base, &space, &cfg, &cache).expect("search");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.cache_misses as usize, first.stats.evaluated);

    let second = explore_with_cache(&prog, &base, &space, &cfg, &cache).expect("search");
    assert_eq!(second.stats.cache_misses, 0, "everything memoized");
    assert_eq!(second.stats.cache_hits as usize, second.stats.evaluated);
    assert_eq!(second.best.label, first.best.label);
    assert_eq!(second.best.cycles, first.best.cycles);
}

#[test]
fn design_cache_compiles_each_design_once_across_substrate_variants() {
    let prog = benchmark("sumrows");
    let sizes: &[(&str, i64)] = &[("m", 64), ("n", 64)];
    let base = CompileOptions::new(sizes);
    // Two substrate variants sample every (tile, par) point: the design
    // cache must halve the compile count without touching the report.
    let space = SearchSpace::new(sizes)
        .tune_dim("m")
        .unwrap()
        .with_inner_pars(&[8, 16])
        .with_sim_variants(&[
            ("max4", SimConfig::default()),
            ("low-bw", SimConfig::default().with_dram_gbps(38.4)),
        ]);
    let cfg = DseConfig::default();

    let plain = explore_program(&prog, &base, &space, &cfg).expect("search");
    let designs = Arc::new(DesignCache::new());
    let shared = explore_with_caches(
        &prog,
        &base,
        &space,
        &cfg,
        &EvalCache::new(),
        Arc::clone(&designs),
    )
    .expect("search");

    assert_eq!(shared.to_json(), plain.to_json(), "reports must not change");
    assert_eq!(
        designs.builds() + designs.hits(),
        shared.stats.evaluated as u64
    );
    assert_eq!(
        designs.builds() * 2,
        shared.stats.evaluated as u64,
        "each design compiled once, reused by the second substrate"
    );
}

#[test]
fn persistent_cache_round_trips_through_a_real_search() {
    let prog = benchmark("sumrows");
    let sizes: &[(&str, i64)] = &[("m", 64), ("n", 64)];
    let base = CompileOptions::new(sizes);
    let space = SearchSpace::new(sizes)
        .tune_dim("m")
        .unwrap()
        .with_inner_pars(&[8, 16]);
    let cfg = DseConfig::default();

    let dir = std::env::temp_dir().join("pphw-dse-persist");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("evals.pphwc");

    let cache = EvalCache::new();
    let first = explore_with_cache(&prog, &base, &space, &cfg, &cache).expect("search");
    cache.save(&path).expect("save");

    // A fresh process would reload the file: everything must replay from
    // disk with zero evaluator work and an identical report.
    let reloaded = EvalCache::load(&path).expect("load");
    let second = explore_with_cache(&prog, &base, &space, &cfg, &reloaded).expect("search");
    assert_eq!(second.stats.cache_misses, 0, "warm from disk");
    assert_eq!(second.stats.cache_hits as usize, second.stats.evaluated);
    assert_eq!(second.best.label, first.best.label);
    assert_eq!(second.best.cycles, first.best.cycles);
    assert_eq!(second.frontier.len(), first.frontier.len());

    std::fs::remove_dir_all(&dir).ok();
}

/// The static-legality stage of the prefilter: a fold whose combine is
/// subtraction cannot be parallelized, so every `inner_par > 1` candidate
/// is rejected *before* compile ([`PPHW010`]'s race condition), counted
/// in `pruned_verify` — while the serial candidates survive, compile, and
/// still produce a best point.
#[test]
fn non_associative_combine_candidates_are_statically_pruned() {
    let mut b = pphw_ir::builder::ProgramBuilder::new("subfold");
    let m = b.size("m");
    let x = b.input("x", pphw_ir::types::DType::F32, vec![m.clone()]);
    let out = b.fold(
        "acc",
        vec![m],
        vec![],
        pphw_ir::types::ScalarType::Prim(pphw_ir::types::DType::F32),
        pphw_ir::pattern::Init::zeros(),
        |c, i, acc| {
            let v = c.read(x, vec![c.var(i[0])]);
            c.add(c.var(acc), v)
        },
        |c, a, b2| c.sub(c.var(a), c.var(b2)),
    );
    let prog = b.finish(vec![out]);

    let sizes: &[(&str, i64)] = &[("m", 64)];
    let base = CompileOptions::new(sizes);
    let space = SearchSpace::new(sizes)
        .tune_dim("m")
        .expect("m is a dimension")
        .with_inner_pars(&[1, 8]);
    let cfg = DseConfig::default();

    let report = explore_program(&prog, &base, &space, &cfg).expect("serial candidates survive");
    assert!(
        report.stats.pruned_verify >= 1,
        "static-legality prune must fire: {:?}",
        report.stats
    );
    // Exactly the parallel half of the space is illegal: every surviving
    // evaluation is a serial candidate.
    assert_eq!(
        report.stats.pruned_verify + report.stats.evaluated + report.stats.pruned_tile,
        report.stats.exhaustive,
        "{:?}",
        report.stats
    );
    assert!(report.best.cycles > 0);
    assert!(
        report.best.label.contains("par=1 "),
        "best must be serial: {}",
        report.best.label
    );
}

#[test]
fn impossible_budget_is_no_feasible_config() {
    let prog = benchmark("gemm");
    let mut base = CompileOptions::new(GEMM_SIZES);
    base.on_chip_budget_bytes = 16;
    let cfg = DseConfig {
        on_chip_budget_bytes: 16,
        ..DseConfig::default()
    };
    let err = explore_program(&prog, &base, &gemm_space(), &cfg).unwrap_err();
    assert_eq!(err, DseError::NoFeasibleConfig);
}

#[test]
fn unknown_dimension_is_rejected_when_building_the_space() {
    let err = SearchSpace::new(GEMM_SIZES).tune_dim("zzz").unwrap_err();
    assert_eq!(err, DseError::UnknownDim("zzz".into()));
}

#[test]
fn capacity_sweep_prunes_deadlocked_scales_identically_across_threads() {
    let prog = benchmark("sumrows");
    let sizes: &[(&str, i64)] = &[("m", 64), ("n", 64)];
    let base = CompileOptions::new(sizes);
    // Scales below 0.5 leave every exact-token channel zero slots: the
    // flow prefilter must reject them before any compile happens.
    let space = SearchSpace::new(sizes)
        .tune_dim("m")
        .unwrap()
        .with_inner_pars(&[8, 16])
        .with_cap_permilles(&[250, 499, 1000, 2000]);

    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let cfg = DseConfig {
            threads,
            ..DseConfig::default()
        };
        let report = explore_program(&prog, &base, &space, &cfg).expect("search");
        assert!(
            report.stats.pruned_flow > 0,
            "deadlocked capacity scales must be pruned by the flow check"
        );
        assert_eq!(
            report.stats.pruned_flow % 2,
            0,
            "both deadlocking scales (0.25, 0.499) prune the same points"
        );
        match &reference {
            None => reference = Some(report.to_json()),
            Some(first) => assert_eq!(
                &report.to_json(),
                first,
                "capacity-sweep report must be bit-identical on {threads} threads"
            ),
        }
    }
}

#[test]
fn inferred_minimal_capacity_mode_matches_as_generated_on_minimal_designs() {
    use pphw::dse::CapacityMode;
    let prog = benchmark("sumrows");
    let sizes: &[(&str, i64)] = &[("m", 64), ("n", 64)];
    let base = CompileOptions::new(sizes);
    let space = SearchSpace::new(sizes)
        .tune_dim("m")
        .unwrap()
        .with_inner_pars(&[8]);

    // The generator already emits minimal channel depths, so inferring
    // them must be a no-op on every point of the sweep.
    let plain = explore_program(&prog, &base, &space, &DseConfig::default()).expect("search");
    let cfg = DseConfig {
        capacity_mode: CapacityMode::InferredMinimal,
        ..DseConfig::default()
    };
    let inferred = explore_program(&prog, &base, &space, &cfg).expect("search");
    assert_eq!(inferred.best.label, plain.best.label);
    assert_eq!(inferred.best.cycles, plain.best.cycles);
    assert_eq!(inferred.best.area_score, plain.best.area_score);
}
