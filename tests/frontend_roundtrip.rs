//! Round-trip property: `parse(pretty(p))` is structurally equal to `p`.
//!
//! Covers every builder benchmark plus a seeded family of random IR
//! programs, and additionally checks that pretty-printing the re-parsed
//! program is byte-identical to the first print (emitter idempotence).

use pphw_frontend::{arbitrary::random_program, parse_program};
use pphw_ir::equiv::structural_diff;
use pphw_ir::pretty::emit_program;
use pphw_ir::program::Program;
use pphw_testkit::prop::Check;

/// Checks the full round trip for one program.
fn check_round_trip(p: &Program, label: &str) -> Result<(), String> {
    let text = emit_program(p);
    let out = match parse_program(&text, &format!("{label}.ppl")) {
        Ok(out) => out,
        Err(errs) => {
            let rendered: Vec<String> = errs.iter().map(|e| e.render(&text, "emitted")).collect();
            return Err(format!(
                "{label}: emitted text failed to parse:\n{}\n--- source ---\n{text}",
                rendered.join("\n")
            ));
        }
    };
    if let Some(diff) = structural_diff(p, &out.program) {
        return Err(format!(
            "{label}: round trip not structurally equal: {diff}\n--- source ---\n{text}"
        ));
    }
    let second = emit_program(&out.program);
    if text != second {
        return Err(format!(
            "{label}: second pretty-print is not byte-identical\n--- first ---\n{text}\n--- second ---\n{second}"
        ));
    }
    Ok(())
}

#[test]
fn benchmarks_round_trip() {
    for spec in pphw_apps::all_benchmarks() {
        if let Err(msg) = check_round_trip(&(spec.program)(), spec.name) {
            panic!("{msg}");
        }
    }
}

#[test]
fn random_programs_round_trip() {
    Check::new("frontend_roundtrip_random").cases(64).run(
        |rng| rng.next_u64(),
        |seed| {
            let p = random_program(*seed);
            check_round_trip(&p, &format!("rand_seed_{seed}"))
        },
    );
}
