//! Corpus equivalence: every checked-in `examples/*.ppl` parses to a
//! program structurally equal to its builder twin, and the parsed program
//! joins the differential harness — the text path earns the same
//! end-to-end guarantees (golden model, tiling, simulated design) as the
//! builder path.

use std::path::PathBuf;

use pphw_apps::all_benchmarks;
use pphw_frontend::parse_program;
use pphw_ir::equiv::structural_diff;
use pphw_ir::program::Program;
use pphw_testkit::differential::{run_differential, DiffCase, DiffOptions};

/// One small sweep case per benchmark, enough to push the parsed program
/// through all three semantics without repeating the full tier-1 sweep.
fn small_case(name: &str) -> DiffCase {
    match name {
        "outerprod" => DiffCase::new(&[("m", 32), ("n", 32)], &[("m", 8), ("n", 8)], 711),
        "sumrows" => DiffCase::new(&[("m", 16), ("n", 64)], &[("m", 4), ("n", 64)], 721),
        "gemm" => DiffCase::new(
            &[("m", 16), ("n", 16), ("p", 16)],
            &[("m", 4), ("n", 4), ("p", 4)],
            731,
        ),
        "tpchq6" => DiffCase::new(&[("n", 256)], &[("n", 32)], 741),
        "gda" => DiffCase::new(&[("n", 64), ("d", 8)], &[("n", 16)], 751),
        "kmeans" => DiffCase::new(
            &[("n", 64), ("k", 4), ("d", 4)],
            &[("n", 16), ("k", 2)],
            761,
        ),
        other => panic!("unknown benchmark {other}"),
    }
}

/// Reads and parses the checked-in `.ppl` twin of a benchmark.
fn parse_corpus_file(name: &str) -> Program {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(format!("{name}.ppl"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    match parse_program(&src, &format!("examples/{name}.ppl")) {
        Ok(out) => out.program,
        Err(errs) => {
            let rendered: Vec<String> = errs
                .iter()
                .map(|e| e.render(&src, &format!("examples/{name}.ppl")))
                .collect();
            panic!("{name}.ppl failed to parse:\n{}", rendered.join("\n"));
        }
    }
}

#[test]
fn corpus_files_match_builder_twins() {
    let mut checked = 0;
    for spec in all_benchmarks() {
        let parsed = parse_corpus_file(spec.name);
        if let Some(diff) = structural_diff(&(spec.program)(), &parsed) {
            panic!(
                "examples/{}.ppl is not structurally equal to its builder twin: {diff}",
                spec.name
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 6, "expected all six benchmarks to have .ppl twins");
}

#[test]
fn parsed_corpus_passes_differential_harness() {
    for spec in all_benchmarks() {
        let parsed = parse_corpus_file(spec.name);
        let report = run_differential(
            spec.name,
            &parsed,
            &spec.inputs,
            Some(&spec.golden),
            &[small_case(spec.name)],
            &DiffOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: parsed program failed differential: {e}", spec.name));
        assert_eq!(report.cases.len(), 1);
        assert!(report.cases[0].levels.iter().all(|l| l.cycles > 0));
    }
}
