//! Cross-crate reporting-surface tests: the artifacts a user reads
//! (pretty-printed IR, design diagrams, MaxJ, cost tables, simulation
//! reports) stay well-formed for every benchmark.

use pphw::{compile, CompileOptions, OptLevel};
use pphw_apps::all_benchmarks;
use pphw_sim::SimConfig;

#[allow(clippy::type_complexity)]
fn small_opts(name: &str) -> (pphw_ir::Program, CompileOptions) {
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .expect("benchmark");
    let (sizes, tiles): (Vec<(&str, i64)>, Vec<(&str, i64)>) = match name {
        "outerprod" => (vec![("m", 64), ("n", 64)], vec![("m", 16), ("n", 16)]),
        "sumrows" => (vec![("m", 64), ("n", 64)], vec![("m", 16), ("n", 64)]),
        "gemm" => (
            vec![("m", 32), ("n", 32), ("p", 32)],
            vec![("m", 8), ("n", 8), ("p", 8)],
        ),
        "tpchq6" => (vec![("n", 2048)], vec![("n", 256)]),
        "gda" => (vec![("n", 128), ("d", 16)], vec![("n", 32)]),
        "kmeans" => (
            vec![("n", 256), ("k", 8), ("d", 8)],
            vec![("n", 32), ("k", 4)],
        ),
        other => panic!("unknown {other}"),
    };
    ((spec.program)(), CompileOptions::new(&sizes).tiles(&tiles))
}

#[test]
fn pretty_printed_ir_is_stable_under_reprint() {
    for spec in all_benchmarks() {
        let prog = (spec.program)();
        let a = pphw_ir::pretty::print_program(&prog);
        let b = pphw_ir::pretty::print_program(&prog);
        assert_eq!(a, b, "{} printing is nondeterministic", spec.name);
        assert!(!a.is_empty());
    }
}

#[test]
fn diagrams_name_every_buffer() {
    for spec in all_benchmarks() {
        let (prog, opts) = small_opts(spec.name);
        let compiled = compile(&prog, &opts.opt(OptLevel::Metapipelined)).expect("compiles");
        let diagram = compiled.design.to_diagram();
        for buf in &compiled.design.buffers {
            assert!(
                diagram.contains(&buf.name),
                "{}: buffer {} missing from diagram\n{diagram}",
                spec.name,
                buf.name
            );
        }
    }
}

#[test]
fn sim_reports_are_consistent() {
    let cfg = SimConfig::default();
    for spec in all_benchmarks() {
        let (prog, opts) = small_opts(spec.name);
        for level in OptLevel::all() {
            let compiled = compile(&prog, &opts.clone().opt(level)).expect("compiles");
            let report = compiled.simulate(&cfg).expect("simulates");
            assert!(report.cycles > 0, "{}: zero cycles", spec.name);
            assert!(
                report.dram_bytes >= report.dram_words * 4,
                "{}: burst padding cannot shrink traffic",
                spec.name
            );
            let text = report.to_text();
            assert!(text.contains("cycles"), "{text}");
            // Bandwidth fraction is a sane ratio.
            let bw = report.bandwidth_fraction(&cfg);
            assert!(
                (0.0..=1.5).contains(&bw),
                "{}: absurd bandwidth fraction {bw}",
                spec.name
            );
        }
    }
}

#[test]
fn cost_tables_cover_all_inputs() {
    for spec in all_benchmarks() {
        let (prog, opts) = small_opts(spec.name);
        let compiled = compile(&prog, &opts.opt(OptLevel::Metapipelined)).expect("compiles");
        let report = compiled.cost();
        let table = report.to_table(&compiled.options.env());
        // Every tensor input that is actually read appears in the table.
        for input in &compiled.program.inputs {
            let name = compiled.program.syms.info(*input).name.clone();
            if matches!(compiled.program.ty(*input), pphw_ir::Type::Tensor { .. })
                && report.get(&name).is_some()
            {
                assert!(table.contains(&name), "{}: {name} missing", spec.name);
            }
        }
    }
}

#[test]
fn evaluation_table_renders_for_every_benchmark() {
    let cfg = SimConfig::default();
    for spec in all_benchmarks() {
        let (prog, opts) = small_opts(spec.name);
        let eval = pphw::evaluate(&prog, &opts, &cfg).expect("evaluates");
        assert_eq!(eval.rows.len(), 3);
        assert!((eval.row(OptLevel::Baseline).speedup - 1.0).abs() < 1e-9);
        let table = eval.to_table();
        assert!(table.contains("baseline"), "{table}");
        assert!(table.contains("+tiling+metapipelining"), "{table}");
    }
}
