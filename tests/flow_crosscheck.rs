//! Cross-checks between the static dataflow-balance analyzer
//! (`pphw-verify::flow`) and the cycle simulator, over all six
//! benchmarks:
//!
//! - every generated design is flow-clean at every optimization level;
//! - the statically predicted bottleneck stage (`predict_bottleneck`)
//!   is the stage the simulator reports as busiest;
//! - the generator's channel depths are already the inferred minimum
//!   (`infer_capacities` is the identity), and doubling every channel
//!   depth buys zero cycles — the minimal sizing is perf-neutral;
//! - shrinking any channel below the inferred minimum is flagged
//!   statically (`PPHW041`/`PPHW042`) and never helps dynamically: the
//!   simulation stalls (strictly more cycles) or deadlocks outright.

use pphw::{compile, CompileOptions, OptLevel};
use pphw_apps::all_benchmarks;
use pphw_hw::channel::channels;
use pphw_sim::{SimConfig, SimError};
use pphw_verify::flow::{infer_capacities, predict_bottleneck, scale_capacities, FlowTiming};
use pphw_verify::{verify_design, DiagCode, VerifyConfig};

fn options_for(spec: &pphw_apps::BenchSpec) -> CompileOptions {
    let mut opts = CompileOptions::new(&(spec.sizes)())
        .tiles(&(spec.tiles)())
        .inner_par(spec.inner_par);
    if let Some(mp) = spec.meta_par {
        opts = opts.meta_inner_par(mp);
    }
    opts
}

#[test]
fn every_benchmark_design_is_flow_clean_at_every_level() {
    for spec in all_benchmarks() {
        for level in OptLevel::all() {
            let opts = options_for(&spec).opt(level);
            let compiled = compile(&(spec.program)(), &opts).expect("compiles");
            let report = verify_design(&compiled.design, &VerifyConfig::default());
            assert!(
                report.is_clean(),
                "{} [{level}] not flow-clean: {:?}",
                spec.name,
                report.diagnostics
            );
        }
    }
}

/// The simulator's busiest stage: max total busy cycles, first by name
/// on exact ties (stage stats arrive sorted by name), mirroring the
/// predictor's tie-break.
fn sim_busiest(report: &pphw_sim::SimReport) -> Option<String> {
    report
        .stages
        .iter()
        .reduce(|best, s| {
            if s.busy_cycles > best.busy_cycles {
                s
            } else {
                best
            }
        })
        .map(|s| s.name.clone())
}

#[test]
fn predicted_bottleneck_matches_simulator_busiest_stage() {
    for spec in all_benchmarks() {
        for level in OptLevel::all() {
            let opts = options_for(&spec).opt(level);
            let compiled = compile(&(spec.program)(), &opts).expect("compiles");
            let report = compiled.simulate(&SimConfig::default()).expect("simulates");
            let predicted = predict_bottleneck(&compiled.design, &FlowTiming::default());
            assert_eq!(
                predicted,
                sim_busiest(&report),
                "{} [{level}]: static bottleneck prediction disagrees with simulation",
                spec.name
            );
        }
    }
}

#[test]
fn generated_depths_are_minimal_and_doubling_them_buys_nothing() {
    for spec in all_benchmarks() {
        let opts = options_for(&spec).opt(OptLevel::Metapipelined);
        let compiled = compile(&(spec.program)(), &opts).expect("compiles");
        assert!(
            !channels(&compiled.design).is_empty(),
            "{}: metapipelined design should expose channels",
            spec.name
        );

        // The generator already sizes every channel at the inferred
        // minimum: capacity inference is the identity.
        let mut inferred = compiled.design.clone();
        let changes = infer_capacities(&mut inferred);
        assert!(
            changes.is_empty(),
            "{}: infer_capacities changed depths: {changes:?}",
            spec.name
        );

        // Doubling every channel depth must be cycle-identical: minimal
        // capacities already sustain full overlap.
        let mut doubled = compiled.design.clone();
        let grown = scale_capacities(&mut doubled, 2000);
        assert!(
            !grown.is_empty(),
            "{}: scaling should grow buffers",
            spec.name
        );
        let base = compiled.simulate(&SimConfig::default()).expect("simulates");
        let big = pphw_sim::simulate(&doubled, &SimConfig::default()).expect("simulates");
        assert_eq!(
            base.cycles, big.cycles,
            "{}: 2x channel depths changed cycle count — minimal sizing was not safe",
            spec.name
        );
        assert_eq!(
            base.stages, big.stages,
            "{}: stage stats diverged",
            spec.name
        );
    }
}

#[test]
fn undersized_channels_are_flagged_statically_and_stall_dynamically() {
    for spec in all_benchmarks() {
        let opts = options_for(&spec).opt(OptLevel::Metapipelined);
        let compiled = compile(&(spec.program)(), &opts).expect("compiles");
        let base = compiled.simulate(&SimConfig::default()).expect("simulates");
        let mut strictly_worse = 0usize;
        for ch in channels(&compiled.design) {
            let mut mutant = compiled.design.clone();
            let words = mutant.buffer(ch.buf).words;
            mutant.buffers[ch.buf.0].words = words - 1;

            // Statically: one word below capacity drops the channel to a
            // single slot (stall) or zero slots (deadlock).
            let report = verify_design(&mutant, &VerifyConfig::default());
            assert!(
                report.has(DiagCode::ChannelStall) || report.has(DiagCode::ChannelDeadlock),
                "{} channel {}/{} shrunk {}w -> {}w: no PPHW041/PPHW042 raised ({:?})",
                spec.name,
                ch.ctrl,
                ch.buf_name,
                words,
                words - 1,
                report.diagnostics
            );

            // Dynamically: never faster; usually strictly slower, or an
            // outright simulated deadlock for zero-slot channels.
            match pphw_sim::simulate(&mutant, &SimConfig::default()) {
                Ok(r) => {
                    assert!(
                        r.cycles >= base.cycles,
                        "{} channel {}/{}: undersizing sped up the design?",
                        spec.name,
                        ch.ctrl,
                        ch.buf_name
                    );
                    if r.cycles > base.cycles {
                        strictly_worse += 1;
                    }
                }
                Err(SimError::ChannelDeadlock { .. }) => {
                    assert!(
                        report.has(DiagCode::ChannelDeadlock),
                        "{} channel {}/{}: dynamic deadlock not predicted statically",
                        spec.name,
                        ch.ctrl,
                        ch.buf_name
                    );
                    strictly_worse += 1;
                }
                Err(e) => panic!("{} channel {}/{}: {e}", spec.name, ch.ctrl, ch.buf_name),
            }
        }
        assert!(
            strictly_worse > 0,
            "{}: no undersized channel bound in simulation",
            spec.name
        );
    }
}
